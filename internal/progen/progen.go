// Package progen generates random, well-formed MC programs for
// differential conformance testing. Every generated program is, by
// construction:
//
//   - well typed (it passes sem.Check);
//   - terminating: all loops have structurally bounded trip counts and all
//     recursion is guarded by an explicit depth parameter;
//   - memory safe: array indices are range-reduced modulo the object size,
//     pointers always target live storage with a statically tracked
//     minimum capacity, and every local is written before it is read;
//   - layout independent: no pointer is ever compared relationally against
//     a pointer into another object, subtracted across objects, or printed.
//
// Those guarantees mean a generated program has exactly one defined
// observable behavior — the one internal/refint computes — so any
// divergence in a compiled run is a compiler or simulator bug, not
// undefined behavior. The knobs tune pointer-aliasing density, loop
// nesting, call/recursion depth, array traffic, and dead-store density so
// the fuzzer reaches the corners the unified management model cares
// about: ambiguous references, last-use kills, and spill traffic.
//
// Generation is fully deterministic in (seed, knobs): the same pair
// always yields the same program, which is what makes failures from the
// differential harness and CI reproducible from a one-line seed.
package progen

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/token"
	"repro/internal/types"
)

// Knobs tunes the shape of generated programs. The zero value is not
// useful; start from DefaultKnobs.
type Knobs struct {
	Globals      int     // scalar int globals (max)
	GlobalArrays int     // global int arrays (max, at least 1 is forced)
	GlobalPtrs   int     // global int* variables (max)
	Funcs        int     // helper functions (max)
	MaxStmts     int     // statements per generated block (max)
	MaxNest      int     // statement nesting depth (if/loops)
	MaxExprDepth int     // expression tree depth
	MaxLoopTrip  int     // loop trip count (max, >= 1)
	CallDepth    int     // recursion budget passed from main
	MaxCallSites int     // call sites per function body (max)
	PtrDensity   float64 // probability of pointer-flavored choices
	DeadStores   float64 // probability of dead-store decoration per block
	PrintProb    float64 // probability a block gains a print statement
}

// DefaultKnobs is the tuning the differential harness and fuzz targets
// use: small enough that programs finish in well under the reference step
// budget, rich enough to exercise aliasing, nesting, and recursion.
func DefaultKnobs() Knobs {
	return Knobs{
		Globals:      4,
		GlobalArrays: 2,
		GlobalPtrs:   2,
		Funcs:        3,
		MaxStmts:     6,
		MaxNest:      3,
		MaxExprDepth: 4,
		MaxLoopTrip:  6,
		CallDepth:    6,
		MaxCallSites: 4,
		PtrDensity:   0.35,
		DeadStores:   0.25,
		PrintProb:    0.5,
	}
}

// ScaleKnobs tunes the generator for the scaling campaign (E12): programs
// roughly scale× the default size in functions and statement volume, with
// proportionally more globals and call sites so both the interprocedural
// summaries and the focused refinement have real material. Scale 1 is
// DefaultKnobs.
func ScaleKnobs(scale int) Knobs {
	if scale < 1 {
		scale = 1
	}
	k := DefaultKnobs()
	k.Globals = 4 + 2*scale
	k.GlobalArrays = 2 + scale/2
	k.GlobalPtrs = 2 + scale/4
	k.Funcs = 3 + 2*scale
	k.MaxStmts = 6 + scale
	k.MaxCallSites = 4 + scale/2
	return k
}

func (k Knobs) normalized() Knobs {
	if k.MaxStmts < 1 {
		k.MaxStmts = 1
	}
	if k.MaxLoopTrip < 1 {
		k.MaxLoopTrip = 1
	}
	if k.MaxExprDepth < 1 {
		k.MaxExprDepth = 1
	}
	if k.CallDepth < 1 {
		k.CallDepth = 1
	}
	if k.GlobalArrays < 1 {
		k.GlobalArrays = 1
	}
	return k
}

// Generate produces the AST of a random program. The result always
// reparses from its printed form (ast.Print) to an equivalent tree.
func Generate(seed int64, k Knobs) *ast.File {
	k = k.normalized()
	g := &pg{r: rand.New(rand.NewSource(seed)), k: k}
	return g.file()
}

// Source is Generate rendered to MC source text — the canonical form both
// the reference interpreter and every compile configuration consume.
func Source(seed int64, k Knobs) string {
	return ast.Print(Generate(seed, k))
}

// ---- Generator state ----

// vk classifies a variable the generator can reference.
type vk int

const (
	vkInt   vk = iota // writable int scalar
	vkRO              // read-only int scalar (loop counters, depth param)
	vkPtr             // int* with known minimum capacity
	vkArray           // int array with known length
)

// vinfo is one referenceable variable with the capacity facts the
// generator relies on for memory safety.
type vinfo struct {
	name string
	kind vk
	cap  int  // vkPtr: minimum valid elements; vkArray: length
	glob bool // global storage (a legal target for global pointers)
}

// fninfo is a generated helper signature. Every helper takes the
// recursion-depth parameter first.
type fninfo struct {
	name    string
	retInt  bool
	ptrCaps []int // capacities of int* params after depth (0 = int param)
}

type pg struct {
	r *rand.Rand
	k Knobs

	globals []*vinfo // scalars
	garrays []*vinfo
	gptrs   []*vinfo
	fns     []*fninfo

	names int // fresh-name counter

	// Per-function generation state.
	scope     []*vinfo // visible variables, innermost last
	loops     []bool   // loop stack; true = for (continue allowed)
	callsLeft int
	inMain    bool
	depthVar  string // name of the depth parameter ("" in main)
	retInt    bool

	// pendingFill holds an array fill loop that must immediately follow
	// its declaration at the same block level (set by declLocal, drained
	// by stmts).
	pendingFill ast.Stmt
}

func (g *pg) fresh(prefix string) string {
	g.names++
	return fmt.Sprintf("%s%d", prefix, g.names)
}

func (g *pg) pick(n int) int { return g.r.Intn(n) }

func (g *pg) chance(p float64) bool { return g.r.Float64() < p }

func id(name string) *ast.Ident { return &ast.Ident{Name: name} }

func lit(v int64) ast.Expr {
	if v < 0 {
		return &ast.Unary{Op: token.MINUS, X: &ast.IntLit{Value: -v}}
	}
	return &ast.IntLit{Value: v}
}

func bin(op token.Kind, x, y ast.Expr) ast.Expr { return &ast.Binary{Op: op, X: x, Y: y} }

// ---- Program structure ----

func (g *pg) file() *ast.File {
	f := &ast.File{}

	// Globals. One array is always present as the universal pointer target.
	nArr := 1
	if g.k.GlobalArrays > 1 {
		nArr += g.pick(g.k.GlobalArrays)
	}
	for i := 0; i < nArr; i++ {
		ln := 4 + g.pick(13) // 4..16
		v := &vinfo{name: g.fresh("ga"), kind: vkArray, cap: ln, glob: true}
		g.garrays = append(g.garrays, v)
		f.Decls = append(f.Decls, &ast.VarDecl{Name: v.name, Type: types.ArrayOf(ln, types.Int)})
	}
	nGlob := 1 + g.pick(g.k.Globals+1)
	for i := 0; i < nGlob; i++ {
		v := &vinfo{name: g.fresh("g"), kind: vkInt, glob: true}
		g.globals = append(g.globals, v)
		d := &ast.VarDecl{Name: v.name, Type: types.Int}
		if g.chance(0.5) {
			d.Init = lit(int64(g.pick(129) - 64))
		}
		f.Decls = append(f.Decls, d)
	}
	nPtr := g.pick(g.k.GlobalPtrs + 1)
	for i := 0; i < nPtr; i++ {
		// Capacity this pointer is guaranteed to have once main's prologue
		// has aimed it at a target.
		c := 1 << g.pick(3) // 1, 2, or 4
		v := &vinfo{name: g.fresh("gp"), kind: vkPtr, cap: c, glob: true}
		g.gptrs = append(g.gptrs, v)
		f.Decls = append(f.Decls, &ast.VarDecl{Name: v.name, Type: types.PointerTo(types.Int)})
	}

	// Helper signatures first so bodies can call forward.
	nFn := g.pick(g.k.Funcs + 1)
	for i := 0; i < nFn; i++ {
		fn := &fninfo{name: g.fresh("f"), retInt: g.chance(0.7)}
		nParams := g.pick(3)
		for p := 0; p < nParams; p++ {
			if g.chance(g.k.PtrDensity) {
				fn.ptrCaps = append(fn.ptrCaps, 1<<g.pick(3)) // cap 1, 2, 4
			} else {
				fn.ptrCaps = append(fn.ptrCaps, 0)
			}
		}
		g.fns = append(g.fns, fn)
	}
	for _, fn := range g.fns {
		f.Decls = append(f.Decls, g.function(fn))
	}
	f.Decls = append(f.Decls, g.mainFunc())
	return f
}

// function generates one helper body.
func (g *pg) function(fn *fninfo) *ast.FuncDecl {
	g.inMain = false
	g.retInt = fn.retInt
	g.depthVar = g.fresh("d")
	g.callsLeft = g.pick(g.k.MaxCallSites + 1)
	g.scope = nil

	d := &ast.FuncDecl{Name: fn.name, Result: types.Void}
	if fn.retInt {
		d.Result = types.Int
	}
	d.Params = append(d.Params, ast.Param{Name: g.depthVar, Type: types.Int})
	g.bind(&vinfo{name: g.depthVar, kind: vkRO})
	for _, c := range fn.ptrCaps {
		if c > 0 {
			p := g.fresh("p")
			d.Params = append(d.Params, ast.Param{Name: p, Type: types.PointerTo(types.Int)})
			g.bind(&vinfo{name: p, kind: vkPtr, cap: c})
		} else {
			p := g.fresh("n")
			d.Params = append(d.Params, ast.Param{Name: p, Type: types.Int})
			g.bind(&vinfo{name: p, kind: vkInt})
		}
	}

	// Depth guard: the recursion base case.
	guard := &ast.IfStmt{
		Cond: bin(token.LT, id(g.depthVar), lit(1)),
		Then: &ast.BlockStmt{List: []ast.Stmt{g.baseReturn()}},
	}
	body := []ast.Stmt{guard}
	body = append(body, g.stmts(g.k.MaxNest)...)
	if fn.retInt {
		body = append(body, &ast.ReturnStmt{Result: g.intExpr(g.k.MaxExprDepth)})
	}
	d.Body = &ast.BlockStmt{List: body}
	g.scope = nil
	return d
}

func (g *pg) baseReturn() ast.Stmt {
	if g.retInt {
		return &ast.ReturnStmt{Result: lit(int64(g.pick(17) - 8))}
	}
	return &ast.ReturnStmt{}
}

// mainFunc generates main: pointer prologue, body, observation epilogue.
func (g *pg) mainFunc() *ast.FuncDecl {
	g.inMain = true
	g.retInt = false
	g.depthVar = ""
	g.callsLeft = g.pick(g.k.MaxCallSites + 2)
	g.scope = nil

	var body []ast.Stmt
	// Prologue: aim every global pointer at a target with enough capacity
	// before anything can read it.
	for _, p := range g.gptrs {
		body = append(body, &ast.AssignStmt{Op: token.ASSIGN, LHS: id(p.name), RHS: g.globalPtrTarget(p.cap)})
		g.bindGlobalPtr(p)
	}
	body = append(body, g.stmts(g.k.MaxNest)...)
	body = append(body, g.epilogue()...)

	d := &ast.FuncDecl{Name: "main", Result: types.Void, Body: &ast.BlockStmt{List: body}}
	g.scope = nil
	return d
}

// bindGlobalPtr makes an initialized global pointer visible to later code.
func (g *pg) bindGlobalPtr(p *vinfo) {
	for _, v := range g.scope {
		if v == p {
			return
		}
	}
	g.scope = append(g.scope, p)
}

// globalPtrTarget builds a pointer expression with at least capacity c
// rooted in global storage (safe to keep in a global pointer forever).
func (g *pg) globalPtrTarget(c int) ast.Expr {
	if c == 1 && len(g.globals) > 0 && g.chance(0.4) {
		sc := g.globals[g.pick(len(g.globals))]
		return &ast.Unary{Op: token.AMP, X: id(sc.name)}
	}
	var fit []*vinfo
	for _, a := range g.garrays {
		if a.cap >= c {
			fit = append(fit, a)
		}
	}
	if len(fit) == 0 {
		// Cannot happen: array lengths are >= 4 and caps are <= 4, but
		// keep a defensive fallback.
		return &ast.Unary{Op: token.AMP, X: id(g.garrays[0].name)}
	}
	a := fit[g.pick(len(fit))]
	if slack := a.cap - c; slack > 0 && g.chance(0.5) {
		return &ast.Unary{Op: token.AMP, X: &ast.Index{X: id(a.name), Idx: lit(int64(g.pick(slack + 1)))}}
	}
	return id(a.name) // array decay
}

// epilogue prints every observable piece of final state so "final
// globals" are part of the compared output by construction.
func (g *pg) epilogue() []ast.Stmt {
	var out []ast.Stmt
	for _, sc := range g.globals {
		out = append(out, &ast.ExprStmt{X: &ast.Call{Fun: id("print"), Args: []ast.Expr{id(sc.name)}}})
	}
	for _, a := range g.garrays {
		ck := g.fresh("ck")
		iv := g.fresh("ci")
		loop := &ast.ForStmt{
			Init: &ast.DeclStmt{Decl: &ast.VarDecl{Name: iv, Type: types.Int, Init: lit(0)}},
			Cond: bin(token.LT, id(iv), lit(int64(a.cap))),
			Post: &ast.IncDecStmt{Op: token.INC, LHS: id(iv)},
			Body: &ast.BlockStmt{List: []ast.Stmt{
				&ast.AssignStmt{Op: token.ASSIGN, LHS: id(ck),
					RHS: bin(token.PERCENT,
						bin(token.PLUS, bin(token.STAR, id(ck), lit(31)), &ast.Index{X: id(a.name), Idx: id(iv)}),
						lit(1000003))},
			}},
		}
		out = append(out,
			&ast.DeclStmt{Decl: &ast.VarDecl{Name: ck, Type: types.Int, Init: lit(7)}},
			loop,
			&ast.ExprStmt{X: &ast.Call{Fun: id("print"), Args: []ast.Expr{id(ck)}}},
		)
	}
	return out
}

// ---- Scoped helpers ----

func (g *pg) bind(v *vinfo) { g.scope = append(g.scope, v) }

func (g *pg) mark() int { return len(g.scope) }

func (g *pg) release(m int) { g.scope = g.scope[:m] }

// vars returns visible variables matching the filter.
func (g *pg) vars(ok func(*vinfo) bool) []*vinfo {
	var out []*vinfo
	for _, v := range g.scope {
		if ok(v) {
			out = append(out, v)
		}
	}
	return out
}

// ---- Statements ----

// stmts generates a statement list with the block budget, honoring the
// array fill-loop protocol: a declLocal that produced an array registers
// a fill loop that must come next so no element is read uninitialized.
func (g *pg) stmts(nest int) []ast.Stmt {
	n := 1 + g.pick(g.k.MaxStmts)
	var out []ast.Stmt
	for i := 0; i < n; i++ {
		s := g.stmt(nest)
		if s == nil {
			continue
		}
		out = append(out, s)
		if g.pendingFill != nil {
			out = append(out, g.pendingFill)
			g.pendingFill = nil
		}
	}
	if g.chance(g.k.DeadStores) {
		out = append(out, g.deadStore()...)
	}
	if g.chance(g.k.PrintProb) {
		out = append(out, &ast.ExprStmt{X: &ast.Call{Fun: id("print"),
			Args: []ast.Expr{g.intExpr(g.k.MaxExprDepth - 1)}}})
	}
	return out
}

func (g *pg) stmt(nest int) ast.Stmt {
	for tries := 0; tries < 4; tries++ {
		switch g.pick(10) {
		case 0:
			return g.declLocal(nest)
		case 1, 2:
			return g.assignStmt()
		case 3:
			if s := g.incDecStmt(); s != nil {
				return s
			}
		case 4:
			if nest > 0 {
				return g.ifStmt(nest)
			}
		case 5:
			if nest > 0 {
				return g.forStmt(nest)
			}
		case 6:
			if nest > 0 && g.chance(0.5) {
				return g.whileStmt(nest)
			}
		case 7:
			if s := g.callStmt(); s != nil {
				return s
			}
		case 8:
			if len(g.loops) > 0 && g.chance(0.3) {
				// break anywhere in a loop; continue only where the
				// innermost loop is a for (a while counter would be skipped).
				if g.loops[len(g.loops)-1] && g.chance(0.5) {
					return &ast.ContinueStmt{}
				}
				return &ast.BreakStmt{}
			}
		case 9:
			return g.ptrStmt()
		}
	}
	return g.assignStmt()
}

// declLocal declares an int, pointer, or array local. Arrays are filled
// immediately so no element is ever read uninitialized.
func (g *pg) declLocal(nest int) ast.Stmt {
	switch {
	case g.chance(0.2) && nest > 0:
		// Local array plus fill loop, packaged in a block so the shrinker
		// can drop the pair atomically.
		name := g.fresh("la")
		ln := 2 + g.pick(7) // 2..8
		v := &vinfo{name: name, kind: vkArray, cap: ln}
		decl := &ast.DeclStmt{Decl: &ast.VarDecl{Name: name, Type: types.ArrayOf(ln, types.Int)}}
		iv := g.fresh("fi")
		fill := &ast.ForStmt{
			Init: &ast.DeclStmt{Decl: &ast.VarDecl{Name: iv, Type: types.Int, Init: lit(0)}},
			Cond: bin(token.LT, id(iv), lit(int64(ln))),
			Post: &ast.IncDecStmt{Op: token.INC, LHS: id(iv)},
			Body: &ast.BlockStmt{List: []ast.Stmt{
				&ast.AssignStmt{Op: token.ASSIGN,
					LHS: &ast.Index{X: id(name), Idx: id(iv)},
					RHS: bin(token.PLUS, id(iv), lit(int64(g.pick(9))))},
			}},
		}
		g.bind(v)
		// The declaration must live at block level (not inside a nested
		// block) so later statements in this block still see it.
		g.pendingFill = fill
		return decl

	case g.chance(g.k.PtrDensity):
		c := 1 << g.pick(3)
		src := g.ptrExpr(c)
		if src == nil {
			break
		}
		name := g.fresh("lp")
		g.bind(&vinfo{name: name, kind: vkPtr, cap: c})
		return &ast.DeclStmt{Decl: &ast.VarDecl{Name: name, Type: types.PointerTo(types.Int), Init: src}}
	}
	// Build the initializer before binding the name: sem resolves the
	// initializer against the new declaration, so a self-reference would
	// be an uninitialized read.
	init := g.intExpr(g.k.MaxExprDepth - 1)
	name := g.fresh("lv")
	g.bind(&vinfo{name: name, kind: vkInt})
	return &ast.DeclStmt{Decl: &ast.VarDecl{Name: name, Type: types.Int, Init: init}}
}

func (g *pg) assignStmt() ast.Stmt {
	lhs := g.intLvalue()
	if g.chance(0.3) {
		ops := []token.Kind{token.PLUSEQ, token.MINUSEQ, token.STAREQ, token.SLASHEQ, token.PERCENTEQ}
		op := ops[g.pick(len(ops))]
		rhs := g.intExpr(g.k.MaxExprDepth - 1)
		if op == token.SLASHEQ || op == token.PERCENTEQ {
			rhs = bin(token.PIPE, rhs, lit(1)) // never zero
		}
		return &ast.AssignStmt{Op: op, LHS: lhs, RHS: rhs}
	}
	return &ast.AssignStmt{Op: token.ASSIGN, LHS: lhs, RHS: g.intExpr(g.k.MaxExprDepth)}
}

func (g *pg) incDecStmt() ast.Stmt {
	ws := g.vars(func(v *vinfo) bool { return v.kind == vkInt })
	if len(ws) == 0 {
		return nil
	}
	op := token.INC
	if g.chance(0.5) {
		op = token.DEC
	}
	return &ast.IncDecStmt{Op: op, LHS: id(ws[g.pick(len(ws))].name)}
}

func (g *pg) ifStmt(nest int) ast.Stmt {
	s := &ast.IfStmt{Cond: g.condExpr(), Then: g.blockStmt(nest - 1)}
	if g.chance(0.5) {
		s.Else = g.blockStmt(nest - 1)
	}
	return s
}

func (g *pg) forStmt(nest int) ast.Stmt {
	iv := g.fresh("i")
	trip := 1 + g.pick(g.k.MaxLoopTrip)
	g.loops = append(g.loops, true)
	g.bind(&vinfo{name: iv, kind: vkRO})
	body := g.blockStmt(nest - 1)
	g.loops = g.loops[:len(g.loops)-1]
	// iv stays bound: the decl lives in the for-init scope, but code after
	// the loop cannot see it, so unbind it.
	g.unbind(iv)
	return &ast.ForStmt{
		Init: &ast.DeclStmt{Decl: &ast.VarDecl{Name: iv, Type: types.Int, Init: lit(0)}},
		Cond: bin(token.LT, id(iv), lit(int64(trip))),
		Post: &ast.IncDecStmt{Op: token.INC, LHS: id(iv)},
		Body: body,
	}
}

func (g *pg) whileStmt(nest int) ast.Stmt {
	// int w = 0; while (w < trip) { ...; w = w + 1; } — returned as a
	// block so the counter declaration travels with the loop.
	wv := g.fresh("w")
	trip := 1 + g.pick(g.k.MaxLoopTrip)
	g.loops = append(g.loops, false) // continue not allowed: it would skip the counter
	g.bind(&vinfo{name: wv, kind: vkRO})
	body := g.blockStmt(nest - 1)
	g.loops = g.loops[:len(g.loops)-1]
	g.unbind(wv)
	body.List = append(body.List, &ast.AssignStmt{Op: token.ASSIGN, LHS: id(wv),
		RHS: bin(token.PLUS, id(wv), lit(1))})
	return &ast.BlockStmt{List: []ast.Stmt{
		&ast.DeclStmt{Decl: &ast.VarDecl{Name: wv, Type: types.Int, Init: lit(0)}},
		&ast.WhileStmt{Cond: bin(token.LT, id(wv), lit(int64(trip))), Body: body},
	}}
}

func (g *pg) unbind(name string) {
	for i := len(g.scope) - 1; i >= 0; i-- {
		if g.scope[i].name == name {
			g.scope = append(g.scope[:i], g.scope[i+1:]...)
			return
		}
	}
}

func (g *pg) blockStmt(nest int) *ast.BlockStmt {
	m := g.mark()
	list := g.stmts(nest)
	g.release(m)
	return &ast.BlockStmt{List: list}
}

// deadStore emits stores whose values are never observed: a write-only
// fresh local, or an overwritten double store — the fodder dead-marking
// and DCE feed on.
func (g *pg) deadStore() []ast.Stmt {
	init := g.intExpr(2)
	name := g.fresh("ds")
	g.bind(&vinfo{name: name, kind: vkInt})
	return []ast.Stmt{
		&ast.DeclStmt{Decl: &ast.VarDecl{Name: name, Type: types.Int, Init: init}},
		&ast.AssignStmt{Op: token.ASSIGN, LHS: id(name), RHS: g.intExpr(1)},
	}
}

func (g *pg) callStmt() ast.Stmt {
	call := g.callExpr()
	if call == nil {
		return nil
	}
	return &ast.ExprStmt{X: call}
}

// ptrStmt writes through a pointer or re-aims a pointer variable.
func (g *pg) ptrStmt() ast.Stmt {
	ps := g.vars(func(v *vinfo) bool { return v.kind == vkPtr })
	if len(ps) > 0 && g.chance(0.6) {
		p := ps[g.pick(len(ps))]
		var lhs ast.Expr
		if p.cap == 1 || g.chance(0.4) {
			lhs = &ast.Unary{Op: token.STAR, X: id(p.name)}
		} else {
			lhs = &ast.Index{X: id(p.name), Idx: g.boundedIndex(p.cap)}
		}
		return &ast.AssignStmt{Op: token.ASSIGN, LHS: lhs, RHS: g.intExpr(g.k.MaxExprDepth - 1)}
	}
	// Re-aim a global pointer from main (targets must be global storage).
	if g.inMain && len(g.gptrs) > 0 {
		p := g.gptrs[g.pick(len(g.gptrs))]
		return &ast.AssignStmt{Op: token.ASSIGN, LHS: id(p.name), RHS: g.globalPtrTarget(p.cap)}
	}
	return g.assignStmt()
}

// ---- Expressions ----

// condExpr is an int expression used as a branch condition; biased toward
// comparisons so branches are taken both ways.
func (g *pg) condExpr() ast.Expr {
	if g.chance(0.8) {
		ops := []token.Kind{token.LT, token.LEQ, token.GT, token.GEQ, token.EQ, token.NEQ}
		c := bin(ops[g.pick(len(ops))], g.intExpr(2), g.intExpr(2))
		if g.chance(0.25) {
			op := token.LAND
			if g.chance(0.5) {
				op = token.LOR
			}
			c = bin(op, c, bin(token.NEQ, g.intExpr(1), lit(0)))
		}
		return c
	}
	return g.intExpr(2)
}

// intLvalue picks a writable int location: a scalar, an array element, or
// a pointer dereference.
func (g *pg) intLvalue() ast.Expr {
	type cand struct {
		e ast.Expr
	}
	var cands []cand
	for _, v := range g.scope {
		switch v.kind {
		case vkInt:
			cands = append(cands, cand{id(v.name)})
		case vkArray:
			cands = append(cands, cand{&ast.Index{X: id(v.name), Idx: g.boundedIndex(v.cap)}})
		case vkPtr:
			if g.chance(g.k.PtrDensity) {
				cands = append(cands, cand{&ast.Unary{Op: token.STAR, X: id(v.name)}})
			}
		}
	}
	for _, v := range g.globals {
		cands = append(cands, cand{id(v.name)})
	}
	for _, v := range g.garrays {
		if g.chance(0.5) {
			cands = append(cands, cand{&ast.Index{X: id(v.name), Idx: g.boundedIndex(v.cap)}})
		}
	}
	// At least one scalar global always exists, so cands is never empty.
	return cands[g.pick(len(cands))].e
}

// boundedIndex builds an index expression provably in [0, n): either a
// literal, a range-reduced expression (e % n + n) % n, or a masked one.
func (g *pg) boundedIndex(n int) ast.Expr {
	switch {
	case n <= 1:
		return lit(0)
	case g.chance(0.5):
		return lit(int64(g.pick(n)))
	case n&(n-1) == 0 && g.chance(0.5):
		// Power of two: mask.
		return bin(token.AMP, g.intExpr(2), lit(int64(n-1)))
	default:
		e := g.intExpr(2)
		return bin(token.PERCENT,
			bin(token.PLUS, bin(token.PERCENT, e, lit(int64(n))), lit(int64(n))),
			lit(int64(n)))
	}
}

// ptrExpr builds a pointer expression with guaranteed capacity >= c, or
// nil if none is derivable in this scope.
func (g *pg) ptrExpr(c int) ast.Expr {
	type cand struct{ e ast.Expr }
	var cands []cand
	for _, v := range g.scope {
		switch v.kind {
		case vkPtr:
			if v.cap >= c {
				cands = append(cands, cand{id(v.name)})
			}
		case vkArray:
			if v.cap >= c {
				cands = append(cands, cand{id(v.name)})
				if slack := v.cap - c; slack > 0 {
					cands = append(cands, cand{&ast.Unary{Op: token.AMP,
						X: &ast.Index{X: id(v.name), Idx: lit(int64(g.pick(slack + 1)))}}})
				}
			}
		case vkInt:
			if c == 1 {
				cands = append(cands, cand{&ast.Unary{Op: token.AMP, X: id(v.name)}})
			}
		}
	}
	for _, v := range g.garrays {
		if v.cap >= c {
			cands = append(cands, cand{id(v.name)})
		}
	}
	if c == 1 {
		for _, v := range g.globals {
			if g.chance(0.3) {
				cands = append(cands, cand{&ast.Unary{Op: token.AMP, X: id(v.name)}})
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[g.pick(len(cands))].e
}

// intExpr builds an int-valued expression of bounded depth.
func (g *pg) intExpr(depth int) ast.Expr {
	if depth <= 0 {
		return g.intLeaf()
	}
	switch g.pick(12) {
	case 0, 1:
		return g.intLeaf()
	case 2, 3, 4:
		ops := []token.Kind{token.PLUS, token.MINUS, token.STAR, token.AMP, token.PIPE, token.CARET}
		return bin(ops[g.pick(len(ops))], g.intExpr(depth-1), g.intExpr(depth-1))
	case 5:
		op := token.SLASH
		if g.chance(0.5) {
			op = token.PERCENT
		}
		return bin(op, g.intExpr(depth-1), bin(token.PIPE, g.intExpr(depth-1), lit(1)))
	case 6:
		op := token.SHL
		if g.chance(0.5) {
			op = token.SHR
		}
		return bin(op, g.intExpr(depth-1), bin(token.AMP, g.intExpr(depth-1), lit(7)))
	case 7:
		ops := []token.Kind{token.LT, token.LEQ, token.GT, token.GEQ, token.EQ, token.NEQ}
		return bin(ops[g.pick(len(ops))], g.intExpr(depth-1), g.intExpr(depth-1))
	case 8:
		if g.chance(0.5) {
			return &ast.Unary{Op: token.MINUS, X: g.intExpr(depth - 1)}
		}
		return &ast.Unary{Op: token.NOT, X: g.intExpr(depth - 1)}
	case 9:
		// Memory read: array element or pointer load.
		if e := g.memRead(); e != nil {
			return e
		}
	case 10:
		op := token.LAND
		if g.chance(0.5) {
			op = token.LOR
		}
		return bin(op, g.intExpr(depth-1), g.intExpr(depth-1))
	case 11:
		if call := g.callExprInt(); call != nil {
			return call
		}
	}
	return g.intLeaf()
}

func (g *pg) intLeaf() ast.Expr {
	ints := g.vars(func(v *vinfo) bool { return v.kind == vkInt || v.kind == vkRO })
	pool := len(ints) + len(g.globals)
	if pool > 0 && g.chance(0.6) {
		n := g.pick(pool)
		if n < len(ints) {
			return id(ints[n].name)
		}
		return id(g.globals[n-len(ints)].name)
	}
	return lit(int64(g.pick(129) - 64))
}

// memRead builds an array or pointer read, or nil.
func (g *pg) memRead() ast.Expr {
	type cand struct{ e ast.Expr }
	var cands []cand
	for _, v := range g.scope {
		switch v.kind {
		case vkArray:
			cands = append(cands, cand{&ast.Index{X: id(v.name), Idx: g.boundedIndex(v.cap)}})
		case vkPtr:
			if v.cap > 1 && g.chance(0.5) {
				cands = append(cands, cand{&ast.Index{X: id(v.name), Idx: g.boundedIndex(v.cap)}})
			} else {
				cands = append(cands, cand{&ast.Unary{Op: token.STAR, X: id(v.name)}})
			}
		}
	}
	for _, v := range g.garrays {
		cands = append(cands, cand{&ast.Index{X: id(v.name), Idx: g.boundedIndex(v.cap)}})
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[g.pick(len(cands))].e
}

// ---- Calls ----

// depthArg is the recursion budget passed to a callee. Inside a loop the
// budget is halved-and-decremented so iteration count cannot multiply
// into exponential call trees.
func (g *pg) depthArg() ast.Expr {
	if g.inMain {
		d := g.k.CallDepth
		if len(g.loops) > 0 {
			// Halve the budget for call sites inside loops so the trip
			// count cannot multiply a full-depth call tree.
			if d = d / 2; d < 1 {
				d = 1
			}
		}
		return lit(int64(d))
	}
	d := bin(token.MINUS, id(g.depthVar), lit(1))
	if len(g.loops) > 0 {
		d = bin(token.SLASH, d, lit(2))
	}
	return d
}

// callExpr builds a call to any helper (void or int) for statement
// position, or nil when no call budget or helpers remain.
func (g *pg) callExpr() ast.Expr {
	if g.callsLeft <= 0 || len(g.fns) == 0 {
		return nil
	}
	fn := g.fns[g.pick(len(g.fns))]
	return g.buildCall(fn)
}

// callExprInt builds a call to an int-returning helper, or nil.
func (g *pg) callExprInt() ast.Expr {
	if g.callsLeft <= 0 {
		return nil
	}
	var ints []*fninfo
	for _, fn := range g.fns {
		if fn.retInt {
			ints = append(ints, fn)
		}
	}
	if len(ints) == 0 {
		return nil
	}
	return g.buildCall(ints[g.pick(len(ints))])
}

func (g *pg) buildCall(fn *fninfo) ast.Expr {
	g.callsLeft--
	args := []ast.Expr{g.depthArg()}
	for _, c := range fn.ptrCaps {
		if c > 0 {
			p := g.ptrExpr(c)
			if p == nil {
				// Fall back to a global array, which always has capacity.
				p = id(g.garrays[0].name)
			}
			args = append(args, p)
		} else {
			args = append(args, g.intExpr(2))
		}
	}
	return &ast.Call{Fun: id(fn.name), Args: args}
}
