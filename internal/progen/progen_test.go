package progen

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/refint"
	"repro/internal/sem"
)

// TestDeterministic: the same (seed, knobs) pair must always produce the
// same source text — the property that makes failures reproducible from a
// one-line seed.
func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Source(seed, DefaultKnobs())
		b := Source(seed, DefaultKnobs())
		if a != b {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	if Source(1, DefaultKnobs()) == Source(2, DefaultKnobs()) {
		t.Error("distinct seeds produced identical programs")
	}
}

// TestWellFormed: every generated program must parse and pass semantic
// analysis, and its printed form must round-trip through the printer
// unchanged (so source text is a canonical exchange format).
func TestWellFormed(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		src := Source(seed, DefaultKnobs())
		file, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		if _, err := sem.Check(file); err != nil {
			t.Fatalf("seed %d: sem: %v\n%s", seed, err, src)
		}
		if again := ast.Print(file); again != src {
			t.Fatalf("seed %d: print round-trip changed the program:\n--- first\n%s\n--- second\n%s", seed, src, again)
		}
	}
}

// TestReferenceOutcomes: generated programs must be memory safe by
// construction — the reference interpreter may run out of budget
// (skipped by the harness) but must never report an invalidity like an
// uninitialized read, bad pointer, or out-of-bounds access. Division by
// zero is likewise excluded by construction (denominators are |1). The
// overwhelming majority must terminate within budget, otherwise the
// differential harness would be starved of usable programs.
func TestReferenceOutcomes(t *testing.T) {
	const n = 300
	var ok, budget int
	for seed := int64(0); seed < n; seed++ {
		src := Source(seed, DefaultKnobs())
		file, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		_, err = refint.Run(file, refint.Config{})
		switch {
		case err == nil:
			ok++
		case refint.Invalid(err):
			t.Fatalf("seed %d: generator emitted an invalid program: %v\n%s", seed, err, src)
		default:
			// Budget, div-zero, or stack overflow: all should be
			// impossible by construction except budget.
			re, isRe := err.(*refint.Error)
			if !isRe || re.Kind != refint.ErrBudget {
				t.Fatalf("seed %d: unexpected outcome %v\n%s", seed, err, src)
			}
			budget++
		}
	}
	t.Logf("outcomes over %d seeds: %d ok, %d budget-exhausted", n, ok, budget)
	if ok < n*9/10 {
		t.Errorf("only %d/%d programs terminate within budget; generator too hot for the harness", ok, n)
	}
}

// TestKnobsShapePrograms: extreme knob settings must still be safe and
// visibly change the generated programs.
func TestKnobsShapePrograms(t *testing.T) {
	heavyPtr := DefaultKnobs()
	heavyPtr.PtrDensity = 0.9
	flat := DefaultKnobs()
	flat.MaxNest = 0
	flat.Funcs = 0
	for seed := int64(0); seed < 50; seed++ {
		for name, k := range map[string]Knobs{"heavyPtr": heavyPtr, "flat": flat} {
			src := Source(seed, k)
			file, err := parser.Parse(src)
			if err != nil {
				t.Fatalf("%s seed %d: parse: %v\n%s", name, seed, err, src)
			}
			if _, err := sem.Check(file); err != nil {
				t.Fatalf("%s seed %d: sem: %v\n%s", name, seed, err, src)
			}
			if _, err := refint.Run(file, refint.Config{}); err != nil && refint.Invalid(err) {
				t.Fatalf("%s seed %d: invalid: %v\n%s", name, seed, err, src)
			}
		}
	}
}

// TestOutputNonTrivial: the epilogue must make final global state
// observable, so every program prints at least one line.
func TestOutputNonTrivial(t *testing.T) {
	var printed int
	for seed := int64(0); seed < 50; seed++ {
		file, err := parser.Parse(Source(seed, DefaultKnobs()))
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		res, err := refint.Run(file, refint.Config{})
		if err != nil {
			continue
		}
		if res.Output == "" {
			t.Errorf("seed %d: program produced no output; nothing to compare", seed)
		} else {
			printed++
		}
	}
	if printed == 0 {
		t.Fatal("no seed produced observable output")
	}
}
