// Package promote implements register promotion of unambiguous scalar
// globals, the optimization the paper's unified model presumes when it
// says unambiguous values are "loaded into a register for a series of
// operations" with the load and store bypassing the cache (§4.2 [1]).
//
// Without promotion, a memory-resident unambiguous value pays a bypass
// memory access on *every* reference; with promotion it pays one
// UmAm_LOAD per function entry and one UmAm_STORE per exit, and all
// interior references become register moves. EXPERIMENTS.md quantifies
// the difference (experiment E6).
//
// Safety: a global g may be promoted across the body of function f iff
//   - g is a scalar and the alias analysis proved it unambiguous (no
//     pointer can reach it), and
//   - no call executed by f (transitively, via the call graph) references
//     g — otherwise the callee would observe a stale memory copy.
//
// Recursive functions that touch g exclude themselves automatically: the
// recursive call is a call that references g.
package promote

import (
	"sort"

	"repro/internal/alias"
	"repro/internal/cfg"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/sem"
)

// Stats reports what the pass did.
type Stats struct {
	PromotedGlobals int // (function, global) pairs promoted
	RewrittenRefs   int // loads/stores turned into register moves
}

// Run promotes unambiguous globals in every function of the program.
// Alias annotation must already have run (MemRef.Ambiguous meaningful).
func Run(prog *ir.Program, an *alias.Analysis) Stats {
	var st Stats
	mr := computeModRef(prog)
	for _, f := range prog.Funcs {
		st.add(promoteFunc(prog, f, an, mr))
	}
	return st
}

func (s *Stats) add(o Stats) {
	s.PromotedGlobals += o.PromotedGlobals
	s.RewrittenRefs += o.RewrittenRefs
}

// modref maps each function name to the set of global objects any
// execution of it may load or store (transitively through calls).
type modref map[string]map[*sem.Object]bool

func computeModRef(prog *ir.Program) modref {
	mr := make(modref, len(prog.Funcs))
	callees := make(map[string][]string)
	for _, f := range prog.Funcs {
		set := make(map[*sem.Object]bool)
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpLoad, ir.OpStore:
					if obj := in.Ref.Obj; obj != nil && obj.Kind == sem.GlobalVar {
						set[obj] = true
					}
					// A deref that may reach globals: pessimize with its
					// whole candidate set via the Ptr object at alias
					// level; unresolved pointers were already forced
					// ambiguous, and ambiguous globals are never promoted,
					// so they cannot be affected by this summary.
				case ir.OpCall:
					callees[f.Name] = append(callees[f.Name], in.Callee.Name)
				}
			}
		}
		mr[f.Name] = set
	}
	// Transitive closure (small graphs; iterate to fixpoint).
	for changed := true; changed; {
		changed = false
		for fname, cs := range callees {
			for _, c := range cs {
				for obj := range mr[c] {
					if !mr[fname][obj] {
						mr[fname][obj] = true
						changed = true
					}
				}
			}
		}
	}
	return mr
}

func promoteFunc(prog *ir.Program, f *ir.Func, an *alias.Analysis, mr modref) Stats {
	var st Stats

	// Candidate globals: unambiguous scalars referenced by f directly,
	// untouched by f's calls.
	touchedByCalls := make(map[*sem.Object]bool)
	weight := make(map[*sem.Object]float64) // loop-depth-weighted ref count
	stores := make(map[*sem.Object]bool)
	depth := cfg.LoopDepth(f)
	exits := 0
	for _, b := range f.Blocks {
		if t := b.Term(); t != nil && t.Op == ir.OpRet {
			exits++
		}
		w := 1.0
		for i := 0; i < depth[b.ID]; i++ {
			w *= 10
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpLoad, ir.OpStore:
				if obj := in.Ref.Obj; obj != nil && obj.Kind == sem.GlobalVar &&
					obj.Type.IsScalar() && !in.Ref.Ambiguous && in.Ref.Kind != ir.RefSpill {
					weight[obj] += w
					if in.Op == ir.OpStore {
						stores[obj] = true
					}
				}
			case ir.OpCall:
				for obj := range mr[in.Callee.Name] {
					touchedByCalls[obj] = true
				}
			}
		}
	}
	var cands []*sem.Object
	for obj, w := range weight {
		if touchedByCalls[obj] || an.ObjectAmbiguous(obj) {
			continue
		}
		// Profitability: promotion costs one entry load plus, for modified
		// globals, one store per exit; it pays off only when the expected
		// interior reference count exceeds that. Loop-resident references
		// are weighted 10x per nesting level, so any reference inside a
		// loop qualifies while a straight-line single use does not.
		cost := 1.0
		if stores[obj] {
			cost += float64(exits)
		}
		if w <= cost {
			continue
		}
		cands = append(cands, obj)
	}
	if len(cands) == 0 {
		return st
	}
	// Deterministic order.
	sort.Slice(cands, func(i, j int) bool { return cands[i].ID < cands[j].ID })

	homeReg := make(map[*sem.Object]ir.Reg, len(cands))
	for _, obj := range cands {
		homeReg[obj] = f.NewReg()
		st.PromotedGlobals++
	}

	// Rewrite interior references to register moves.
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.OpLoad && in.Op != ir.OpStore {
				continue
			}
			obj := in.Ref.Obj
			home, ok := homeReg[obj]
			if !ok || in.Ref.Kind == ir.RefSpill {
				continue
			}
			if in.Op == ir.OpLoad {
				*in = ir.Instr{Op: ir.OpCopy, Dst: in.Dst, A: home, Pos: in.Pos}
			} else {
				*in = ir.Instr{Op: ir.OpCopy, Dst: home, A: in.B, Pos: in.Pos}
			}
			st.RewrittenRefs++
		}
	}

	// Entry: load each candidate once (UmAm_LOAD after classification).
	var entry []ir.Instr
	for _, obj := range cands {
		addr := f.NewReg()
		entry = append(entry,
			ir.Instr{Op: ir.OpAddr, Dst: addr, Obj: obj},
			ir.Instr{Op: ir.OpLoad, Dst: homeReg[obj], A: addr,
				Ref: &ir.MemRef{Kind: ir.RefScalar, Obj: obj, AliasSet: an.SetID(obj)}})
	}
	eb := f.Entry()
	eb.Instrs = append(entry, eb.Instrs...)

	// Exits: write modified candidates back before each return.
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpRet {
			continue
		}
		var writeback []ir.Instr
		for _, obj := range cands {
			if !stores[obj] {
				continue
			}
			addr := f.NewReg()
			writeback = append(writeback,
				ir.Instr{Op: ir.OpAddr, Dst: addr, Obj: obj},
				ir.Instr{Op: ir.OpStore, A: addr, B: homeReg[obj],
					Ref: &ir.MemRef{Kind: ir.RefScalar, Obj: obj, AliasSet: an.SetID(obj)}})
		}
		if len(writeback) == 0 {
			continue
		}
		ret := b.Instrs[len(b.Instrs)-1]
		b.Instrs = append(b.Instrs[:len(b.Instrs)-1], append(writeback, ret)...)
	}

	opt.EliminateDeadCode(f)
	f.Renumber()
	return st
}
