package promote_test

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/irinterp"
	"repro/internal/mcgen"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/promote"
	"repro/internal/sem"
	"repro/internal/vm"
)

// buildAnnotated compiles through irgen + webs + alias annotation, the
// state promote.Run expects.
func buildAnnotated(t *testing.T, src string) (*ir.Program, *alias.Analysis) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := irgen.Build(info)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	for _, fn := range prog.Funcs {
		dataflow.SplitWebs(fn)
	}
	an := alias.Analyze(info)
	an.Annotate(prog)
	return prog, an
}

func TestPromotesCallFreeLoopGlobal(t *testing.T) {
	src := `
int counter;
void main() {
    int i;
    for (i = 0; i < 100; i++) {
        counter = counter + i;
    }
    print(counter);
}`
	prog, an := buildAnnotated(t, src)
	st := promote.Run(prog, an)
	if st.PromotedGlobals != 1 {
		t.Fatalf("promoted = %d, want 1", st.PromotedGlobals)
	}
	if st.RewrittenRefs < 2 {
		t.Errorf("rewritten refs = %d, want >= 2", st.RewrittenRefs)
	}
	// Exactly one load and one store of counter remain (entry/exit).
	main := prog.Lookup("main")
	loads, stores := 0, 0
	for _, b := range main.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Ref != nil && in.Ref.Obj != nil && in.Ref.Obj.Name == "counter" {
				if in.Op == ir.OpLoad {
					loads++
				} else {
					stores++
				}
			}
		}
	}
	if loads != 1 || stores != 1 {
		t.Errorf("counter refs after promotion: %d loads, %d stores; want 1 and 1\n%s",
			loads, stores, main)
	}
	if err := main.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	res, err := irinterp.Run(prog, irinterp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "4950\n" {
		t.Errorf("output = %q, want 4950", res.Output)
	}
}

func TestDoesNotPromoteAcrossTouchingCalls(t *testing.T) {
	src := `
int shared;
void bump() { shared = shared + 1; }
void main() {
    int i;
    for (i = 0; i < 10; i++) {
        shared = shared + 1;
        bump();
    }
    print(shared);
}`
	prog, an := buildAnnotated(t, src)
	promote.Run(prog, an)
	// main calls bump which touches shared: shared must not be promoted in
	// main (bump would see a stale memory copy). It may be promoted in
	// bump (leaf).
	res, err := irinterp.Run(prog, irinterp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "20\n" {
		t.Errorf("output = %q, want 20 (promotion across touching call is unsound)", res.Output)
	}
}

func TestDoesNotPromoteAmbiguousGlobals(t *testing.T) {
	src := `
int g1;
int g2;
void set(int *p, int v) { *p = v; }
void main() {
    set(&g1, 4);
    set(&g2, 5);
    print(g1 + g2);
}`
	prog, an := buildAnnotated(t, src)
	st := promote.Run(prog, an)
	if st.PromotedGlobals != 0 {
		t.Errorf("promoted %d aliased globals", st.PromotedGlobals)
	}
	res, err := irinterp.Run(prog, irinterp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "9\n" {
		t.Errorf("output = %q", res.Output)
	}
}

func TestRecursiveSelfTouchExcluded(t *testing.T) {
	src := `
int depth;
int walk(int n) {
    depth = depth + 1;
    if (n <= 0) return depth;
    return walk(n - 1);
}
void main() { print(walk(5)); }`
	prog, an := buildAnnotated(t, src)
	promote.Run(prog, an)
	res, err := irinterp.Run(prog, irinterp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "6\n" {
		t.Errorf("output = %q, want 6", res.Output)
	}
}

// Full-pipeline semantics: every benchmark and fuzzed program must produce
// identical output with and without promotion, on both the interpreter and
// the simulator.
func TestPromotionPreservesSemantics(t *testing.T) {
	var srcs []string
	for _, b := range bench.All() {
		srcs = append(srcs, b.Source)
	}
	for seed := int64(100); seed < 120; seed++ {
		srcs = append(srcs, mcgen.Program(seed))
	}
	for i, src := range srcs {
		base, err := core.Compile(src, core.Config{Mode: core.Unified})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		want, err := irinterp.Run(base.Prog, irinterp.Config{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		promoted, err := core.Compile(src, core.Config{Mode: core.Unified, PromoteGlobals: true})
		if err != nil {
			t.Fatalf("case %d promoted: %v", i, err)
		}
		got, err := irinterp.Run(promoted.Prog, irinterp.Config{})
		if err != nil {
			t.Fatalf("case %d promoted run: %v", i, err)
		}
		if got.Output != want.Output {
			t.Fatalf("case %d: promotion changed output\nwant %q\ngot  %q", i, want.Output, got.Output)
		}
		mprog, err := codegen.Generate(promoted)
		if err != nil {
			t.Fatalf("case %d codegen: %v", i, err)
		}
		res, err := vm.Run(mprog, vm.Config{Cache: cache.DefaultConfig()})
		if err != nil {
			t.Fatalf("case %d vm: %v", i, err)
		}
		if res.Output != want.Output {
			t.Fatalf("case %d: vm output diverged after promotion\nwant %q\ngot  %q",
				i, want.Output, res.Output)
		}
	}
}

func trafficOf(t *testing.T, src string, cfg core.Config) int64 {
	t.Helper()
	comp, err := core.Compile(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mprog, err := codegen.Generate(comp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(mprog, vm.Config{Cache: cache.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	return res.CacheStats.MemTrafficWords(1)
}

// Promotion must never regress DRAM traffic on any benchmark: the
// profitability heuristic skips cases like towers, whose hot globals are
// updated inside leaf functions reached through recursion and therefore
// cannot be promoted at function granularity (the remaining gap between
// the paper's register vision and per-function promotion).
func TestPromotionNeverRegressesBenchmarks(t *testing.T) {
	for _, b := range bench.All() {
		plain := trafficOf(t, b.Source, core.Config{Mode: core.Unified})
		promoted := trafficOf(t, b.Source, core.Config{Mode: core.Unified, PromoteGlobals: true})
		if promoted > plain {
			t.Errorf("%s: promotion regressed traffic %d -> %d", b.Name, plain, promoted)
		}
		t.Logf("%-8s unified DRAM words: %8d plain, %8d promoted", b.Name, plain, promoted)
	}
}

// On a call-free counter loop — the pattern the paper's "series of
// operations" phrasing describes — promotion must collapse the per-
// iteration bypass traffic to a single load/store pair.
func TestPromotionSlashesHotLoopTraffic(t *testing.T) {
	src := `
int accum;
int steps;
void main() {
    int i;
    for (i = 0; i < 10000; i++) {
        accum = accum + i;
        steps = steps + 1;
    }
    print(accum);
    print(steps);
}`
	plain := trafficOf(t, src, core.Config{Mode: core.Unified})
	promoted := trafficOf(t, src, core.Config{Mode: core.Unified, PromoteGlobals: true})
	if promoted*100 > plain {
		t.Errorf("promotion too weak: %d -> %d (want >100x reduction)", plain, promoted)
	}
	t.Logf("hot-loop unified DRAM words: %d plain, %d promoted", plain, promoted)
}

func TestEliminateDeadCode(t *testing.T) {
	src := `
void main() {
    int x;
    x = 1;
    print(x);
}`
	prog, _ := buildAnnotated(t, src)
	main := prog.Lookup("main")
	// Inject dead instructions.
	dead1 := main.NewReg()
	dead2 := main.NewReg()
	entry := main.Entry()
	entry.Instrs = append([]ir.Instr{
		{Op: ir.OpConst, Dst: dead1, Imm: 99},
		{Op: ir.OpBin, Dst: dead2, A: dead1, B: dead1, Bin: ir.Add},
	}, entry.Instrs...)
	removed := opt.EliminateDeadCode(main)
	if removed < 2 {
		t.Errorf("removed %d, want >= 2 (chain)", removed)
	}
	if err := main.Verify(); err != nil {
		t.Fatal(err)
	}
	res, err := irinterp.Run(prog, irinterp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "1\n" {
		t.Errorf("output = %q", res.Output)
	}
}
