// Package refint is the deliberately naive reference interpreter for MC:
// a tree-walking evaluator over the raw AST with no registers, no cache,
// no IR and no optimizer. It defines the ground-truth observable behavior
// the whole compiler pipeline — irgen, optimizer, allocator, codegen, VM,
// cache model — must reproduce bit-for-bit: printed output, final global
// state, and termination under a step budget.
//
// Beyond plain execution it is a dynamic soundness checker: every pointer
// value carries its provenance (the allocation it points into), every
// storage word carries an initialized bit, and frames are poisoned on
// return. A program that reads uninitialized storage, dereferences a null
// or dangling pointer, indexes outside the pointed-to object, or compares
// pointers into different objects gets a structured *Error instead of a
// layout-dependent answer. The differential harness (internal/difftest)
// classifies such programs as invalid and excludes them from comparison,
// exactly the way exact-analysis work pairs a static result with an
// executable oracle.
//
// Evaluation order deliberately mirrors internal/irgen (operands left to
// right, assignment targets before right-hand sides, compound-assignment
// loads before right-hand sides, call arguments left to right) so that a
// program whose expressions have side effects — a call that prints, or
// writes a global read elsewhere in the same statement — observes the
// same interleaving in both worlds.
package refint

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/token"
	"repro/internal/types"
)

// Config bounds a run.
type Config struct {
	MaxSteps  int64 // AST evaluation steps (default 2,000,000)
	MemWords  int   // storage words for globals + frames (default 1<<20)
	MaxFrames int   // call-stack depth limit (default 256)
}

func (c Config) normalized() Config {
	if c.MaxSteps == 0 {
		c.MaxSteps = 2_000_000
	}
	if c.MemWords == 0 {
		c.MemWords = 1 << 20
	}
	if c.MaxFrames == 0 {
		c.MaxFrames = 256
	}
	return c
}

// Result is the observable outcome of a successful run.
type Result struct {
	Output  string             // everything printed by print/printchar
	Steps   int64              // AST evaluation steps consumed
	Globals map[string][]int64 // final global state: scalars have length 1
}

// ErrKind classifies interpreter errors. Budget and DivZero can occur in
// well-defined programs; the remaining kinds mark the program itself as
// invalid (its behavior would be layout- or garbage-dependent, so no
// compiled run can be held to it).
type ErrKind int

// Error kinds.
const (
	ErrBudget        ErrKind = iota // step budget exhausted
	ErrDivZero                      // division or remainder by zero
	ErrUninit                       // read of never-written storage
	ErrNull                         // dereference through a non-pointer value
	ErrDangling                     // dereference into a returned frame
	ErrOutOfBounds                  // dereference outside the pointed-to object
	ErrCrossObject                  // relational compare / difference of unrelated pointers
	ErrStackOverflow                // frame area or call depth exhausted
	ErrBadProgram                   // ill-formed program reached the interpreter
)

func (k ErrKind) String() string {
	switch k {
	case ErrBudget:
		return "budget"
	case ErrDivZero:
		return "div-zero"
	case ErrUninit:
		return "uninit-read"
	case ErrNull:
		return "null-deref"
	case ErrDangling:
		return "dangling-deref"
	case ErrOutOfBounds:
		return "out-of-bounds"
	case ErrCrossObject:
		return "cross-object"
	case ErrStackOverflow:
		return "stack-overflow"
	case ErrBadProgram:
		return "bad-program"
	}
	return "?"
}

// Error is a structured interpreter error.
type Error struct {
	Kind ErrKind
	Pos  token.Pos
	Msg  string
}

func (e *Error) Error() string {
	if e.Pos.Line > 0 {
		return fmt.Sprintf("refint: %s: %s at %s", e.Kind, e.Msg, e.Pos)
	}
	return fmt.Sprintf("refint: %s: %s", e.Kind, e.Msg)
}

// Invalid reports whether err marks the program itself as having no
// defined reference behavior (as opposed to a budget stop or an ordinary
// arithmetic trap).
func Invalid(err error) bool {
	if e, ok := err.(*Error); ok {
		switch e.Kind {
		case ErrUninit, ErrNull, ErrDangling, ErrOutOfBounds, ErrCrossObject, ErrBadProgram:
			return true
		}
	}
	return false
}

// alloc is one live (or dead) storage object: a global, or one variable of
// one frame. Pointer values keep a reference to their alloc forever, which
// is how dangling and out-of-bounds dereferences are detected after the
// frame is gone.
type alloc struct {
	name  string
	base  int64 // first word
	limit int64 // one past the last word
	dead  bool
}

// value is a runtime value: a machine integer, or a pointer carrying the
// element type it strides over and the allocation it points into. Arrays
// evaluate to decayed pointers. obj == nil means "not a pointer" (plain
// int, or a null pointer copied out of zeroed global storage).
type value struct {
	i    int64
	elem *types.Type // pointer element type; nil for ints
	obj  *alloc
}

// cell is one word of storage with its initialized bit and, when the word
// holds a pointer, the pointer's provenance.
type cell struct {
	v    value
	init bool
}

// place is a resolved storage location: the address of an lvalue together
// with its static type and provenance.
type place struct {
	addr int64
	t    *types.Type
	obj  *alloc
}

// binding associates a name with its storage in a scope.
type binding struct {
	t *types.Type
	a *alloc
}

type interp struct {
	cfg    Config
	mem    []cell
	out    strings.Builder
	steps  int64
	frames int
	sp     int64 // frame bump pointer, grows downward from len(mem)

	funcs    map[string]*ast.FuncDecl
	globals  []*binding // in declaration order, for the final snapshot
	gnames   []string
	topScope map[string]*binding
}

// control models statement-level non-local exits.
type control int

const (
	ctlNext control = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

// Run interprets the file starting at main().
func Run(file *ast.File, cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	in := &interp{
		cfg:      cfg,
		mem:      make([]cell, cfg.MemWords),
		sp:       int64(cfg.MemWords),
		funcs:    make(map[string]*ast.FuncDecl),
		topScope: make(map[string]*binding),
	}

	// Globals from word 64 upward; word 0 stays unused so a null pointer
	// never aliases a variable.
	next := int64(64)
	for _, d := range file.Decls {
		switch d := d.(type) {
		case *ast.VarDecl:
			if _, dup := in.topScope[d.Name]; dup {
				return nil, in.errf(ErrBadProgram, d.Pos(), "global %s redeclared", d.Name)
			}
			words := int64(d.Type.Words())
			if words <= 0 {
				return nil, in.errf(ErrBadProgram, d.Pos(), "global %s has no storage", d.Name)
			}
			a := &alloc{name: d.Name, base: next, limit: next + words}
			if a.limit >= in.sp {
				return nil, in.errf(ErrStackOverflow, d.Pos(), "globals exceed memory")
			}
			for w := a.base; w < a.limit; w++ {
				in.mem[w] = cell{v: value{}, init: true} // globals are zero-initialized
			}
			if d.Init != nil {
				v, ok := constInit(d.Init)
				if !ok {
					return nil, in.errf(ErrBadProgram, d.Pos(), "global %s has a non-constant initializer", d.Name)
				}
				in.mem[a.base].v.i = v
			}
			b := &binding{t: d.Type, a: a}
			in.topScope[d.Name] = b
			in.globals = append(in.globals, b)
			in.gnames = append(in.gnames, d.Name)
			next = a.limit
		case *ast.FuncDecl:
			if _, dup := in.funcs[d.Name]; dup {
				return nil, in.errf(ErrBadProgram, d.Pos(), "function %s redeclared", d.Name)
			}
			in.funcs[d.Name] = d
		}
	}

	main, ok := in.funcs["main"]
	if !ok {
		return nil, in.errf(ErrBadProgram, token.Pos{}, "program has no main function")
	}
	if len(main.Params) != 0 {
		return nil, in.errf(ErrBadProgram, main.Pos(), "main must take no parameters")
	}
	if _, err := in.call(main, nil, main.Pos()); err != nil {
		return nil, err
	}

	res := &Result{Output: in.out.String(), Steps: in.steps, Globals: make(map[string][]int64)}
	for i, b := range in.globals {
		vals := make([]int64, b.a.limit-b.a.base)
		for w := range vals {
			vals[w] = in.mem[b.a.base+int64(w)].v.i
		}
		res.Globals[in.gnames[i]] = vals
	}
	return res, nil
}

// constInit evaluates the constant-expression subset sem accepts for
// global initializers.
func constInit(e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, true
	case *ast.Unary:
		v, ok := constInit(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case token.MINUS:
			return -v, true
		case token.NOT:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *ast.Binary:
		a, ok1 := constInit(e.X)
		b, ok2 := constInit(e.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch e.Op {
		case token.PLUS:
			return a + b, true
		case token.MINUS:
			return a - b, true
		case token.STAR:
			return a * b, true
		case token.SLASH:
			if b == 0 {
				return 0, false
			}
			return wrapDiv(a, b), true
		case token.PERCENT:
			if b == 0 {
				return 0, false
			}
			return wrapRem(a, b), true
		case token.SHL:
			if b < 0 || b > 62 {
				return 0, false
			}
			return a << uint(b), true
		case token.SHR:
			if b < 0 || b > 62 {
				return 0, false
			}
			return a >> uint(b), true
		case token.AMP:
			return a & b, true
		case token.PIPE:
			return a | b, true
		case token.CARET:
			return a ^ b, true
		}
	}
	return 0, false
}

func (in *interp) errf(k ErrKind, pos token.Pos, format string, args ...any) *Error {
	return &Error{Kind: k, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// tick charges one evaluation step.
func (in *interp) tick(pos token.Pos) error {
	in.steps++
	if in.steps > in.cfg.MaxSteps {
		return &Error{Kind: ErrBudget, Pos: pos,
			Msg: fmt.Sprintf("step budget of %d exhausted", in.cfg.MaxSteps)}
	}
	return nil
}

// ---- Frames and scopes ----

type frame struct {
	in      *interp
	scopes  []map[string]*binding
	allocs  []*alloc
	savedSP int64
	ret     value
}

func (in *interp) call(fn *ast.FuncDecl, args []value, at token.Pos) (value, error) {
	if in.frames >= in.cfg.MaxFrames {
		return value{}, in.errf(ErrStackOverflow, at, "call depth exceeds %d frames in call to %s",
			in.cfg.MaxFrames, fn.Name)
	}
	if len(args) != len(fn.Params) {
		return value{}, in.errf(ErrBadProgram, at, "%s called with %d args, want %d",
			fn.Name, len(args), len(fn.Params))
	}
	in.frames++
	fr := &frame{in: in, savedSP: in.sp}
	fr.push()
	defer func() {
		fr.pop()
		for _, a := range fr.allocs {
			a.dead = true
			for w := a.base; w < a.limit; w++ {
				in.mem[w] = cell{} // poison: uninit and provenance-free
			}
		}
		in.sp = fr.savedSP
		in.frames--
	}()

	for i, p := range fn.Params {
		b, err := fr.declare(p.Name, p.Type, p.NamePos)
		if err != nil {
			return value{}, err
		}
		in.mem[b.a.base] = cell{v: args[i], init: true}
	}

	ctl, err := fr.block(fn.Body, false)
	if err != nil {
		return value{}, err
	}
	if ctl == ctlReturn {
		return fr.ret, nil
	}
	// Falling off the end of an int function returns 0, exactly as irgen's
	// synthesized epilogue does.
	return value{}, nil
}

func (fr *frame) push() { fr.scopes = append(fr.scopes, make(map[string]*binding)) }
func (fr *frame) pop()  { fr.scopes = fr.scopes[:len(fr.scopes)-1] }

// declare allocates storage for a new local in the current scope. The
// words start uninitialized.
func (fr *frame) declare(name string, t *types.Type, pos token.Pos) (*binding, error) {
	in := fr.in
	words := int64(t.Words())
	if words <= 0 {
		return nil, in.errf(ErrBadProgram, pos, "variable %s has no storage", name)
	}
	base := in.sp - words
	if base < int64(64) || (len(in.globals) > 0 && base < in.globals[len(in.globals)-1].a.limit) {
		return nil, in.errf(ErrStackOverflow, pos, "frame storage exhausted declaring %s", name)
	}
	in.sp = base
	a := &alloc{name: name, base: base, limit: base + words}
	fr.allocs = append(fr.allocs, a)
	for w := a.base; w < a.limit; w++ {
		in.mem[w] = cell{}
	}
	b := &binding{t: t, a: a}
	top := fr.scopes[len(fr.scopes)-1]
	if _, dup := top[name]; dup {
		return nil, in.errf(ErrBadProgram, pos, "%s redeclared in the same scope", name)
	}
	top[name] = b
	return b, nil
}

func (fr *frame) lookup(name string) *binding {
	for i := len(fr.scopes) - 1; i >= 0; i-- {
		if b, ok := fr.scopes[i][name]; ok {
			return b
		}
	}
	return fr.in.topScope[name]
}

// ---- Statements ----

func (fr *frame) block(b *ast.BlockStmt, ownScope bool) (control, error) {
	if ownScope {
		fr.push()
		defer fr.pop()
	}
	for _, s := range b.List {
		ctl, err := fr.stmt(s)
		if err != nil || ctl != ctlNext {
			return ctl, err
		}
	}
	return ctlNext, nil
}

func (fr *frame) stmt(s ast.Stmt) (control, error) {
	in := fr.in
	if err := in.tick(s.Pos()); err != nil {
		return ctlNext, err
	}
	switch s := s.(type) {
	case *ast.DeclStmt:
		return ctlNext, fr.declStmt(s.Decl)

	case *ast.AssignStmt:
		return ctlNext, fr.assign(s)

	case *ast.IncDecStmt:
		pl, err := fr.lvalue(s.LHS)
		if err != nil {
			return ctlNext, err
		}
		old, err := fr.load(pl, s.Pos())
		if err != nil {
			return ctlNext, err
		}
		step := int64(1)
		if pl.t.IsPointer() {
			step = int64(pl.t.Elem.Words())
		}
		nv := old
		if s.Op == token.DEC {
			nv.i = old.i - step
		} else {
			nv.i = old.i + step
		}
		return ctlNext, fr.store(pl, nv, s.Pos())

	case *ast.ExprStmt:
		_, err := fr.expr(s.X)
		return ctlNext, err

	case *ast.BlockStmt:
		return fr.block(s, true)

	case *ast.IfStmt:
		c, err := fr.expr(s.Cond)
		if err != nil {
			return ctlNext, err
		}
		if c.i != 0 {
			return fr.stmt(s.Then)
		}
		if s.Else != nil {
			return fr.stmt(s.Else)
		}
		return ctlNext, nil

	case *ast.WhileStmt:
		for {
			c, err := fr.expr(s.Cond)
			if err != nil {
				return ctlNext, err
			}
			if c.i == 0 {
				return ctlNext, nil
			}
			ctl, err := fr.stmt(s.Body)
			if err != nil {
				return ctlNext, err
			}
			if ctl == ctlBreak {
				return ctlNext, nil
			}
			if ctl == ctlReturn {
				return ctl, nil
			}
			if err := in.tick(s.Pos()); err != nil {
				return ctlNext, err
			}
		}

	case *ast.ForStmt:
		fr.push()
		defer fr.pop()
		if s.Init != nil {
			if ctl, err := fr.stmt(s.Init); err != nil || ctl != ctlNext {
				return ctl, err
			}
		}
		for {
			if s.Cond != nil {
				c, err := fr.expr(s.Cond)
				if err != nil {
					return ctlNext, err
				}
				if c.i == 0 {
					return ctlNext, nil
				}
			}
			ctl, err := fr.stmt(s.Body)
			if err != nil {
				return ctlNext, err
			}
			if ctl == ctlBreak {
				return ctlNext, nil
			}
			if ctl == ctlReturn {
				return ctl, nil
			}
			if s.Post != nil {
				if ctl, err := fr.stmt(s.Post); err != nil || ctl != ctlNext {
					return ctl, err
				}
			}
			if err := in.tick(s.Pos()); err != nil {
				return ctlNext, err
			}
		}

	case *ast.ReturnStmt:
		if s.Result != nil {
			v, err := fr.expr(s.Result)
			if err != nil {
				return ctlNext, err
			}
			fr.ret = v
		} else {
			fr.ret = value{}
		}
		return ctlReturn, nil

	case *ast.BreakStmt:
		return ctlBreak, nil
	case *ast.ContinueStmt:
		return ctlContinue, nil
	}
	return ctlNext, in.errf(ErrBadProgram, s.Pos(), "unhandled statement %T", s)
}

func (fr *frame) declStmt(d *ast.VarDecl) error {
	// Declare first, then evaluate the initializer: sem resolves names in
	// the initializer against the new declaration, so "int x = x;" reads
	// the fresh (uninitialized) x — which this interpreter then reports as
	// an uninitialized read rather than silently producing a value.
	b, err := fr.declare(d.Name, d.Type, d.Pos())
	if err != nil {
		return err
	}
	if d.Init != nil {
		v, err := fr.expr(d.Init)
		if err != nil {
			return err
		}
		fr.in.mem[b.a.base] = cell{v: v, init: true}
	}
	return nil
}

func (fr *frame) assign(s *ast.AssignStmt) error {
	in := fr.in
	// Address first, then (for compound ops) the old value, then the RHS:
	// the same order irgen emits, observable when the RHS calls a function
	// that writes the target.
	pl, err := fr.lvalue(s.LHS)
	if err != nil {
		return err
	}
	if s.Op == token.ASSIGN {
		v, err := fr.expr(s.RHS)
		if err != nil {
			return err
		}
		return fr.store(pl, v, s.Pos())
	}
	old, err := fr.load(pl, s.Pos())
	if err != nil {
		return err
	}
	rhs, err := fr.expr(s.RHS)
	if err != nil {
		return err
	}
	if pl.t.IsPointer() {
		// Pointer += / -= advances whole elements.
		w := int64(pl.t.Elem.Words())
		nv := old
		if s.Op == token.MINUSEQ {
			nv.i = old.i - rhs.i*w
		} else {
			nv.i = old.i + rhs.i*w
		}
		return fr.store(pl, nv, s.Pos())
	}
	var bin token.Kind
	switch s.Op {
	case token.PLUSEQ:
		bin = token.PLUS
	case token.MINUSEQ:
		bin = token.MINUS
	case token.STAREQ:
		bin = token.STAR
	case token.SLASHEQ:
		bin = token.SLASH
	case token.PERCENTEQ:
		bin = token.PERCENT
	default:
		return in.errf(ErrBadProgram, s.Pos(), "unhandled assignment operator %s", s.Op)
	}
	nvi, err := fr.intBin(bin, old.i, rhs.i, s.Pos())
	if err != nil {
		return err
	}
	return fr.store(pl, value{i: nvi}, s.Pos())
}

// ---- Places, loads, stores ----

// lvalue resolves an assignable expression to a place.
func (fr *frame) lvalue(e ast.Expr) (place, error) {
	in := fr.in
	switch e := e.(type) {
	case *ast.Ident:
		b := fr.lookup(e.Name)
		if b == nil || b.a == nil {
			return place{}, in.errf(ErrBadProgram, e.Pos(), "%s is not a variable", e.Name)
		}
		return place{addr: b.a.base, t: b.t, obj: b.a}, nil

	case *ast.Index:
		// Base before index, as irgen lowers element addresses.
		base, err := fr.expr(e.X) // arrays decay to pointers here
		if err != nil {
			return place{}, err
		}
		if base.elem == nil {
			return place{}, in.errf(ErrNull, e.Pos(), "indexing a non-pointer value")
		}
		idx, err := fr.expr(e.Idx)
		if err != nil {
			return place{}, err
		}
		addr := base.i + idx.i*int64(base.elem.Words())
		return place{addr: addr, t: base.elem, obj: base.obj}, nil

	case *ast.Unary:
		if e.Op == token.STAR {
			p, err := fr.expr(e.X)
			if err != nil {
				return place{}, err
			}
			if p.elem == nil {
				return place{}, in.errf(ErrNull, e.Pos(), "dereference of a non-pointer value")
			}
			return place{addr: p.i, t: p.elem, obj: p.obj}, nil
		}
	}
	return place{}, in.errf(ErrBadProgram, e.Pos(), "invalid assignment target")
}

// checkPlace validates a place for an actual memory access.
func (fr *frame) checkPlace(pl place, pos token.Pos) error {
	in := fr.in
	if pl.obj == nil {
		return in.errf(ErrNull, pos, "access through a null or integer-valued pointer")
	}
	if pl.obj.dead {
		return in.errf(ErrDangling, pos, "access into returned frame of %s", pl.obj.name)
	}
	words := int64(1)
	if pl.t != nil {
		if w := int64(pl.t.Words()); w > 0 {
			words = w
		}
	}
	if pl.addr < pl.obj.base || pl.addr+words > pl.obj.limit {
		return in.errf(ErrOutOfBounds, pos, "address %d outside %s [%d,%d)",
			pl.addr, pl.obj.name, pl.obj.base, pl.obj.limit)
	}
	return nil
}

// load reads a scalar from a place; array-typed places decay to pointers
// without touching memory.
func (fr *frame) load(pl place, pos token.Pos) (value, error) {
	in := fr.in
	if pl.t.IsArray() {
		if err := fr.checkPlace(pl, pos); err != nil {
			return value{}, err
		}
		return value{i: pl.addr, elem: pl.t.Elem, obj: pl.obj}, nil
	}
	if err := fr.checkPlace(pl, pos); err != nil {
		return value{}, err
	}
	c := in.mem[pl.addr]
	if !c.init {
		return value{}, in.errf(ErrUninit, pos, "read of uninitialized %s word %d", pl.obj.name, pl.addr)
	}
	return c.v, nil
}

func (fr *frame) store(pl place, v value, pos token.Pos) error {
	in := fr.in
	if pl.t.IsArray() {
		return in.errf(ErrBadProgram, pos, "cannot assign to array %s", pl.obj.name)
	}
	if err := fr.checkPlace(pl, pos); err != nil {
		return err
	}
	in.mem[pl.addr] = cell{v: v, init: true}
	return nil
}

// ---- Expressions ----

func (fr *frame) expr(e ast.Expr) (value, error) {
	in := fr.in
	if err := in.tick(e.Pos()); err != nil {
		return value{}, err
	}
	switch e := e.(type) {
	case *ast.IntLit:
		return value{i: e.Value}, nil

	case *ast.Ident:
		b := fr.lookup(e.Name)
		if b == nil || b.a == nil {
			return value{}, in.errf(ErrBadProgram, e.Pos(), "undefined or non-value name %s", e.Name)
		}
		return fr.load(place{addr: b.a.base, t: b.t, obj: b.a}, e.Pos())

	case *ast.Unary:
		switch e.Op {
		case token.MINUS:
			x, err := fr.expr(e.X)
			if err != nil {
				return value{}, err
			}
			return value{i: -x.i}, nil
		case token.NOT:
			x, err := fr.expr(e.X)
			if err != nil {
				return value{}, err
			}
			if x.i == 0 {
				return value{i: 1}, nil
			}
			return value{i: 0}, nil
		case token.STAR:
			p, err := fr.expr(e.X)
			if err != nil {
				return value{}, err
			}
			if p.elem == nil {
				return value{}, in.errf(ErrNull, e.Pos(), "dereference of a non-pointer value")
			}
			return fr.load(place{addr: p.i, t: p.elem, obj: p.obj}, e.Pos())
		case token.AMP:
			pl, err := fr.address(e.X)
			if err != nil {
				return value{}, err
			}
			return value{i: pl.addr, elem: pl.t, obj: pl.obj}, nil
		}
		return value{}, in.errf(ErrBadProgram, e.Pos(), "invalid unary operator %s", e.Op)

	case *ast.Binary:
		return fr.binary(e)

	case *ast.Index:
		pl, err := fr.lvalue(e)
		if err != nil {
			return value{}, err
		}
		return fr.load(pl, e.Pos())

	case *ast.Call:
		return fr.callExpr(e)
	}
	return value{}, in.errf(ErrBadProgram, e.Pos(), "unhandled expression %T", e)
}

// address resolves &x targets: identifiers, elements, and *p.
func (fr *frame) address(e ast.Expr) (place, error) {
	in := fr.in
	switch e := e.(type) {
	case *ast.Ident, *ast.Index:
		return fr.lvalue(e)
	case *ast.Unary:
		if e.Op == token.STAR {
			p, err := fr.expr(e.X) // &*p == p
			if err != nil {
				return place{}, err
			}
			if p.elem == nil {
				return place{}, in.errf(ErrNull, e.Pos(), "dereference of a non-pointer value")
			}
			return place{addr: p.i, t: p.elem, obj: p.obj}, nil
		}
	}
	return place{}, in.errf(ErrBadProgram, e.Pos(), "cannot take address of this expression")
}

func (fr *frame) binary(e *ast.Binary) (value, error) {
	in := fr.in
	switch e.Op {
	case token.LAND, token.LOR:
		x, err := fr.expr(e.X)
		if err != nil {
			return value{}, err
		}
		if e.Op == token.LAND && x.i == 0 {
			return value{i: 0}, nil
		}
		if e.Op == token.LOR && x.i != 0 {
			return value{i: 1}, nil
		}
		y, err := fr.expr(e.Y)
		if err != nil {
			return value{}, err
		}
		if y.i != 0 {
			return value{i: 1}, nil
		}
		return value{i: 0}, nil
	}

	x, err := fr.expr(e.X)
	if err != nil {
		return value{}, err
	}
	y, err := fr.expr(e.Y)
	if err != nil {
		return value{}, err
	}

	// Pointer arithmetic and comparisons.
	xp, yp := x.elem != nil, y.elem != nil
	switch e.Op {
	case token.PLUS:
		if xp && !yp {
			return value{i: x.i + y.i*int64(x.elem.Words()), elem: x.elem, obj: x.obj}, nil
		}
		if !xp && yp {
			return value{i: y.i + x.i*int64(y.elem.Words()), elem: y.elem, obj: y.obj}, nil
		}
	case token.MINUS:
		if xp && !yp {
			return value{i: x.i - y.i*int64(x.elem.Words()), elem: x.elem, obj: x.obj}, nil
		}
		if xp && yp {
			if x.obj != y.obj {
				return value{}, in.errf(ErrCrossObject, e.Pos(), "difference of pointers into different objects")
			}
			w := int64(x.elem.Words())
			if w == 0 {
				w = 1
			}
			return value{i: (x.i - y.i) / w}, nil
		}
	case token.EQ, token.NEQ:
		// Equality of unrelated pointers is layout-independent (two live
		// objects never share an address), so it stays defined.
		if xp || yp {
			res := x.i == y.i
			if e.Op == token.NEQ {
				res = !res
			}
			return value{i: b2i(res)}, nil
		}
	case token.LT, token.GT, token.LEQ, token.GEQ:
		if xp || yp {
			if x.obj != y.obj {
				return value{}, in.errf(ErrCrossObject, e.Pos(), "relational compare of pointers into different objects")
			}
			return value{i: b2i(cmp(e.Op, x.i, y.i))}, nil
		}
	}

	if xp || yp {
		return value{}, in.errf(ErrBadProgram, e.Pos(), "invalid pointer operands for %s", e.Op)
	}
	v, err := fr.intBin(e.Op, x.i, y.i, e.Pos())
	if err != nil {
		return value{}, err
	}
	return value{i: v}, nil
}

func cmp(op token.Kind, a, b int64) bool {
	switch op {
	case token.LT:
		return a < b
	case token.GT:
		return a > b
	case token.LEQ:
		return a <= b
	case token.GEQ:
		return a >= b
	}
	return false
}

func b2i(c bool) int64 {
	if c {
		return 1
	}
	return 0
}

// wrapDiv is two's-complement division: MinInt64 / -1 wraps to MinInt64
// instead of faulting, matching the UM machine's (and the IR
// interpreter's) defined overflow semantics.
func wrapDiv(a, b int64) int64 {
	if b == -1 {
		return -a // wraps for MinInt64 without the Go runtime panic
	}
	return a / b
}

// wrapRem is the remainder counterpart: MinInt64 % -1 == 0.
func wrapRem(a, b int64) int64 {
	if b == -1 {
		return 0
	}
	return a % b
}

func (fr *frame) intBin(op token.Kind, a, b int64, pos token.Pos) (int64, error) {
	switch op {
	case token.PLUS:
		return a + b, nil
	case token.MINUS:
		return a - b, nil
	case token.STAR:
		return a * b, nil
	case token.SLASH:
		if b == 0 {
			return 0, fr.in.errf(ErrDivZero, pos, "division by zero")
		}
		return wrapDiv(a, b), nil
	case token.PERCENT:
		if b == 0 {
			return 0, fr.in.errf(ErrDivZero, pos, "remainder by zero")
		}
		return wrapRem(a, b), nil
	case token.AMP:
		return a & b, nil
	case token.PIPE:
		return a | b, nil
	case token.CARET:
		return a ^ b, nil
	case token.SHL:
		return a << uint64(b&63), nil
	case token.SHR:
		return a >> uint64(b&63), nil
	case token.EQ:
		return b2i(a == b), nil
	case token.NEQ:
		return b2i(a != b), nil
	case token.LT, token.GT, token.LEQ, token.GEQ:
		return b2i(cmp(op, a, b)), nil
	}
	return 0, fr.in.errf(ErrBadProgram, pos, "unhandled binary operator %s", op)
}

func (fr *frame) callExpr(e *ast.Call) (value, error) {
	in := fr.in
	name := e.Fun.Name
	// Builtins.
	if name == "print" || name == "printchar" {
		if len(e.Args) != 1 {
			return value{}, in.errf(ErrBadProgram, e.Pos(), "%s expects 1 argument", name)
		}
		v, err := fr.expr(e.Args[0])
		if err != nil {
			return value{}, err
		}
		if name == "printchar" {
			in.out.WriteByte(byte(v.i))
		} else {
			fmt.Fprintf(&in.out, "%d\n", v.i)
		}
		return value{}, nil
	}
	fn, ok := in.funcs[name]
	if !ok {
		return value{}, in.errf(ErrBadProgram, e.Pos(), "call to unknown function %s", name)
	}
	args := make([]value, 0, len(e.Args))
	for _, a := range e.Args {
		v, err := fr.expr(a)
		if err != nil {
			return value{}, err
		}
		args = append(args, v)
	}
	return in.call(fn, args, e.Pos())
}
