package refint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/irinterp"
	"repro/internal/parser"
)

func run(t *testing.T, src string, cfg Config) (*Result, error) {
	t.Helper()
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Run(file, cfg)
}

func mustRun(t *testing.T, src string) *Result {
	t.Helper()
	res, err := run(t, src, Config{})
	if err != nil {
		t.Fatalf("refint: %v", err)
	}
	return res
}

func wantErrKind(t *testing.T, src string, kind ErrKind) *Error {
	t.Helper()
	_, err := run(t, src, Config{})
	var re *Error
	if !errors.As(err, &re) {
		t.Fatalf("want *Error of kind %s, got %v", kind, err)
	}
	if re.Kind != kind {
		t.Fatalf("want error kind %s, got %s (%v)", kind, re.Kind, re)
	}
	return re
}

// TestBenchmarksMatchIRInterp pins the reference interpreter to the IR
// interpreter over the whole benchmark suite: two independently written
// executors of the same programs must agree byte for byte.
func TestBenchmarksMatchIRInterp(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			file, err := parser.Parse(b.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			ref, err := Run(file, Config{MaxSteps: 200_000_000})
			if err != nil {
				t.Fatalf("refint: %v", err)
			}
			comp, err := core.Compile(b.Source, core.Config{Mode: core.Unified})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			ir, err := irinterp.Run(comp.Prog, irinterp.Config{})
			if err != nil {
				t.Fatalf("irinterp: %v", err)
			}
			if ref.Output != ir.Output {
				t.Errorf("outputs diverge:\nrefint:   %q\nirinterp: %q", ref.Output, ir.Output)
			}
		})
	}
}

// TestExamplesMatchIRInterp does the same over the checked-in example
// programs.
func TestExamplesMatchIRInterp(t *testing.T) {
	paths, _ := filepath.Glob("../../examples/mc/*.mc")
	if len(paths) == 0 {
		t.Skip("no example programs found")
	}
	for _, p := range paths {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			src, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			file, err := parser.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			ref, err := Run(file, Config{MaxSteps: 200_000_000})
			if err != nil {
				t.Fatalf("refint: %v", err)
			}
			comp, err := core.Compile(string(src), core.Config{Mode: core.Conventional})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			ir, err := irinterp.Run(comp.Prog, irinterp.Config{})
			if err != nil {
				t.Fatalf("irinterp: %v", err)
			}
			if ref.Output != ir.Output {
				t.Errorf("outputs diverge:\nrefint:   %q\nirinterp: %q", ref.Output, ir.Output)
			}
		})
	}
}

func TestGlobalsSnapshot(t *testing.T) {
	res := mustRun(t, `
int g;
int a[3];
void main() {
    int i;
    g = 41 + 1;
    for (i = 0; i < 3; i++) {
        a[i] = i * 10;
    }
}`)
	if got := res.Globals["g"]; len(got) != 1 || got[0] != 42 {
		t.Errorf("g = %v, want [42]", got)
	}
	if got := res.Globals["a"]; len(got) != 3 || got[0] != 0 || got[1] != 10 || got[2] != 20 {
		t.Errorf("a = %v, want [0 10 20]", got)
	}
}

// TestEvalOrder pins the observable evaluation order to irgen's: LHS
// addresses before RHS values, compound loads before RHS side effects,
// operands and arguments left to right.
func TestEvalOrder(t *testing.T) {
	src := `
int g;
int a[4];
int touch(int v) {
    print(v);
    g = v;
    return v;
}
void main() {
    g = 5;
    g += touch(3);
    print(g);
    a[touch(1)] = touch(2);
    print(touch(10) - touch(4));
}`
	res := mustRun(t, src)
	// g += touch(3): old g (5) is read before the call overwrites it, so
	// g becomes 5+3=8 even though touch set it to 3.
	want := "3\n8\n1\n2\n10\n4\n6\n"
	if res.Output != want {
		t.Errorf("output = %q, want %q", res.Output, want)
	}

	// The compiled pipeline must agree.
	comp, err := core.Compile(src, core.Config{Mode: core.Unified, Optimize: true})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ir, err := irinterp.Run(comp.Prog, irinterp.Config{})
	if err != nil {
		t.Fatalf("irinterp: %v", err)
	}
	if ir.Output != want {
		t.Errorf("irinterp output = %q, want %q", ir.Output, want)
	}
}

func TestShortCircuit(t *testing.T) {
	res := mustRun(t, `
int hit;
int yes(int r) { hit = hit + 1; return r; }
void main() {
    hit = 0;
    if (0 && yes(1)) { print(99); }
    if (1 || yes(1)) { print(1); }
    print(hit);
    if (yes(1) && yes(0)) { print(98); }
    print(hit);
}`)
	want := "1\n0\n2\n"
	if res.Output != want {
		t.Errorf("output = %q, want %q", res.Output, want)
	}
}

func TestPointerSemantics(t *testing.T) {
	res := mustRun(t, `
int a[5];
void main() {
    int *p;
    int *q;
    int i;
    for (i = 0; i < 5; i++) { a[i] = i * i; }
    p = a;
    q = &a[3];
    print(*q);
    print(q - p);
    print(p[2]);
    q = q - 1;
    print(*q);
    if (p == a) { print(111); }
    if (p != q) { print(222); }
}`)
	want := "9\n3\n4\n4\n111\n222\n"
	if res.Output != want {
		t.Errorf("output = %q, want %q", res.Output, want)
	}
}

func TestFallOffEndReturnsZero(t *testing.T) {
	res := mustRun(t, `
int f(int x) { if (x > 0) { return 7; } }
void main() { print(f(1)); print(f(0)); }`)
	if res.Output != "7\n0\n" {
		t.Errorf("output = %q, want %q", res.Output, "7\n0\n")
	}
}

func TestDivZero(t *testing.T) {
	wantErrKind(t, `void main() { int x; x = 0; print(10 / x); }`, ErrDivZero)
	wantErrKind(t, `void main() { int x; x = 0; print(10 % x); }`, ErrDivZero)
}

func TestWrapDivMinInt(t *testing.T) {
	res := mustRun(t, `
void main() {
    int min;
    int m1;
    min = 1;
    min = min << 63;
    m1 = -1;
    print(min / m1);
    print(min % m1);
}`)
	want := "-9223372036854775808\n0\n"
	if res.Output != want {
		t.Errorf("output = %q, want %q", res.Output, want)
	}
}

func TestShiftMasking(t *testing.T) {
	res := mustRun(t, `
void main() {
    int x;
    int s;
    x = 1;
    s = 65;
    print(x << s);
    s = -1;
    print(2 >> (s & 63));
}`)
	// 65&63 = 1 so 1<<65 == 2; (-1)&63 = 63 so 2>>63 == 0.
	want := "2\n0\n"
	if res.Output != want {
		t.Errorf("output = %q, want %q", res.Output, want)
	}
}

func TestUninitRead(t *testing.T) {
	wantErrKind(t, `void main() { int x; print(x); }`, ErrUninit)
	wantErrKind(t, `void main() { int a[4]; print(a[2]); }`, ErrUninit)
	wantErrKind(t, `void main() { int x; int y; y = x + 1; print(y); }`, ErrUninit)
}

func TestSelfReferentialInitIsUninit(t *testing.T) {
	// sem resolves the initializer against the new declaration, so this
	// reads the fresh x before any write.
	wantErrKind(t, `int x; void main() { int x = x + 1; print(x); }`, ErrUninit)
}

func TestNullDeref(t *testing.T) {
	wantErrKind(t, `int *p; void main() { print(*p); }`, ErrNull)
}

func TestOutOfBounds(t *testing.T) {
	wantErrKind(t, `
int a[4];
void main() {
    int i;
    for (i = 0; i < 4; i++) { a[i] = i; }
    print(a[4]);
}`, ErrOutOfBounds)
}

func TestDanglingDeref(t *testing.T) {
	wantErrKind(t, `
int *gp;
void leak() { int x; x = 5; gp = &x; }
void main() { leak(); print(*gp); }`, ErrDangling)
}

func TestCrossObjectCompare(t *testing.T) {
	wantErrKind(t, `
int a[2];
int b[2];
void main() {
    int *p;
    int *q;
    p = a;
    q = b;
    if (p < q) { print(1); } else { print(2); }
}`, ErrCrossObject)
}

func TestCrossObjectEqualityIsDefined(t *testing.T) {
	res := mustRun(t, `
int a[2];
int b[2];
void main() {
    int *p;
    int *q;
    p = a;
    q = b;
    if (p == q) { print(1); } else { print(0); }
}`)
	if res.Output != "0\n" {
		t.Errorf("output = %q, want %q", res.Output, "0\n")
	}
}

func TestBudget(t *testing.T) {
	_, err := run(t, `void main() { while (1) { } }`, Config{MaxSteps: 1000})
	var re *Error
	if !errors.As(err, &re) || re.Kind != ErrBudget {
		t.Fatalf("want budget error, got %v", err)
	}
	if Invalid(err) {
		t.Error("budget exhaustion must not classify the program as invalid")
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	_, err := run(t, `
int down(int n) { return down(n - 1); }
void main() { print(down(1000000)); }`, Config{MaxFrames: 64})
	var re *Error
	if !errors.As(err, &re) || re.Kind != ErrStackOverflow {
		t.Fatalf("want stack-overflow error, got %v", err)
	}
}

func TestBoundedRecursionOK(t *testing.T) {
	res := mustRun(t, `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
void main() { print(fib(15)); }`)
	if res.Output != "610\n" {
		t.Errorf("output = %q, want %q", res.Output, "610\n")
	}
}

func TestLoopDeclFreshPerIteration(t *testing.T) {
	// A declaration inside a loop body is fresh (and uninitialized) every
	// iteration; writing then reading it is fine.
	res := mustRun(t, `
void main() {
    int i;
    int sum;
    sum = 0;
    for (i = 0; i < 10; i++) {
        int t;
        t = i * 2;
        sum += t;
    }
    print(sum);
}`)
	if res.Output != "90\n" {
		t.Errorf("output = %q, want %q", res.Output, "90\n")
	}
}

func TestInvalidClassification(t *testing.T) {
	cases := []struct {
		err  *Error
		want bool
	}{
		{&Error{Kind: ErrBudget}, false},
		{&Error{Kind: ErrDivZero}, false},
		{&Error{Kind: ErrUninit}, true},
		{&Error{Kind: ErrNull}, true},
		{&Error{Kind: ErrDangling}, true},
		{&Error{Kind: ErrOutOfBounds}, true},
		{&Error{Kind: ErrCrossObject}, true},
		{&Error{Kind: ErrBadProgram}, true},
	}
	for _, c := range cases {
		if got := Invalid(c.err); got != c.want {
			t.Errorf("Invalid(%s) = %v, want %v", c.err.Kind, got, c.want)
		}
	}
	if Invalid(errors.New("plain")) {
		t.Error("plain errors must not classify as invalid")
	}
}

func TestErrorStrings(t *testing.T) {
	e := &Error{Kind: ErrUninit, Msg: "read of uninitialized x"}
	if !strings.Contains(e.Error(), "uninit-read") {
		t.Errorf("error string %q should name its kind", e.Error())
	}
}
