// Package regalloc implements graph-coloring register allocation in the
// style of Chaitin [ChA81][Cha82], the allocator the paper's unified model
// builds on, plus a Freiburghouse usage-count allocator [Fre74] as the
// comparative baseline.
//
// Allocation runs after web splitting, so each virtual register is one
// value (one web). Values live across calls are restricted to callee-saved
// colors. Spill code follows §4.2 of the paper: the spill store goes
// *through the cache* (AmSp_STORE) and each reload is a UmAm_LOAD whose
// final occurrence kills the cached copy; internal/core assigns those bits,
// this package only materializes the loads/stores with RefSpill references.
package regalloc

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// Strategy selects the coloring heuristic.
type Strategy int

// Allocation strategies.
const (
	// Chaitin is simplify/select graph coloring with Briggs-style
	// optimistic push and cost/degree spill choice.
	Chaitin Strategy = iota
	// UsageCount greedily colors webs in decreasing reference-frequency
	// order (Freiburghouse), spilling whatever does not fit.
	UsageCount
)

func (s Strategy) String() string {
	if s == UsageCount {
		return "usage-count"
	}
	return "chaitin"
}

// Target describes the allocatable physical registers.
type Target struct {
	CallerSaved []int // clobbered by calls
	CalleeSaved []int // preserved by calls
}

// Colors returns the full palette size.
func (t Target) Colors() int { return len(t.CallerSaved) + len(t.CalleeSaved) }

// Allocation is the result of register allocation for one function.
type Allocation struct {
	F        *ir.Func
	Strategy Strategy

	// PhysOf maps every live virtual register to a physical register.
	PhysOf map[ir.Reg]int

	// UsedCalleeSaved lists callee-saved registers the function writes
	// (prologue/epilogue must save and restore them).
	UsedCalleeSaved []int

	// SpilledWebs counts webs sent to stack slots.
	SpilledWebs int

	// Iterations is how many build/color rounds ran.
	Iterations int
}

const maxRounds = 40

// Allocate colors f's virtual registers. The function is modified in place
// when spill code is required. Call dataflow.SplitWebs(f) first for
// value-grained live ranges.
func Allocate(f *ir.Func, tgt Target, strat Strategy) (*Allocation, error) {
	if tgt.Colors() == 0 {
		return nil, fmt.Errorf("regalloc: empty register palette")
	}
	res := &Allocation{F: f, Strategy: strat, PhysOf: make(map[ir.Reg]int)}
	for round := 0; ; round++ {
		if round >= maxRounds {
			return nil, fmt.Errorf("regalloc: %s did not converge after %d rounds", f.Name, maxRounds)
		}
		res.Iterations = round + 1
		g := buildGraph(f)
		spilled := color(g, tgt, strat, res)
		if len(spilled) == 0 {
			res.UsedCalleeSaved = usedCalleeSaved(res, tgt)
			return res, nil
		}
		res.SpilledWebs += len(spilled)
		insertSpillCode(f, spilled)
	}
}

// ---- interference graph ----

type graph struct {
	f          *ir.Func
	nodes      []ir.Reg       // live virtual registers
	index      map[ir.Reg]int // reg -> node index
	adj        []map[int]bool // adjacency sets
	degree     []int
	cost       []float64 // spill cost (10^loopdepth per reference)
	acrossCall []bool    // must take a callee-saved color
	noSpill    []bool    // spill temporaries must not re-spill
	moves      [][2]int  // copy-related pairs (for diagnostics)
}

func buildGraph(f *ir.Func) *graph {
	lv := dataflow.ComputeLiveness(f)
	depth := cfg.LoopDepth(f)
	g := &graph{f: f, index: make(map[ir.Reg]int)}

	touch := func(r ir.Reg) int {
		if i, ok := g.index[r]; ok {
			return i
		}
		i := len(g.nodes)
		g.index[r] = i
		g.nodes = append(g.nodes, r)
		g.adj = append(g.adj, make(map[int]bool))
		g.degree = append(g.degree, 0)
		g.cost = append(g.cost, 0)
		g.acrossCall = append(g.acrossCall, false)
		g.noSpill = append(g.noSpill, false)
		return i
	}
	addEdge := func(a, b int) {
		if a == b || g.adj[a][b] {
			return
		}
		g.adj[a][b] = true
		g.adj[b][a] = true
		g.degree[a]++
		g.degree[b]++
	}

	// Ensure parameters are nodes even if unused; parameters spilled to a
	// slot never materialize in a register and are excluded.
	for i, p := range f.Params {
		if _, spilledParam := f.ParamSpillSlot[i]; !spilledParam {
			touch(p)
		}
	}

	// Values live into the entry block (parameters and anything upward
	// exposed) hold distinct incoming values simultaneously; they interfere
	// pairwise even though no instruction defines them.
	entryLive := lv.In[f.Entry().ID].Elems()
	for i := 0; i < len(entryLive); i++ {
		for j := i + 1; j < len(entryLive); j++ {
			addEdge(touch(ir.Reg(entryLive[i])), touch(ir.Reg(entryLive[j])))
		}
	}

	var scratch []ir.Reg
	for _, b := range f.Blocks {
		w := 1.0
		for i := 0; i < depth[b.ID]; i++ {
			w *= 10
		}
		lv.WalkBackward(b, func(_ int, in *ir.Instr, liveAfter dataflow.BitSet) {
			d := in.Def()
			if d != ir.NoReg {
				di := touch(d)
				g.cost[di] += w
				if in.Ref != nil && in.Ref.Kind == ir.RefSpill {
					g.noSpill[di] = true
				}
				// The def interferes with everything live after it, except
				// itself and, for a copy, the source (they may share).
				var copySrc ir.Reg = ir.NoReg
				if in.Op == ir.OpCopy {
					copySrc = in.A
				}
				liveAfter.ForEach(func(ri int) {
					r := ir.Reg(ri)
					if r == d || r == copySrc {
						return
					}
					addEdge(di, touch(r))
				})
				if copySrc != ir.NoReg {
					g.moves = append(g.moves, [2]int{di, touch(copySrc)})
				}
			}
			scratch = in.AppendUses(scratch[:0])
			for _, u := range scratch {
				ui := touch(u)
				g.cost[ui] += w
				if in.Ref != nil && in.Ref.Kind == ir.RefSpill && in.Op == ir.OpStore && u == in.B {
					g.noSpill[ui] = true
				}
			}
			if in.Op == ir.OpCall {
				liveAfter.ForEach(func(ri int) {
					r := ir.Reg(ri)
					if r == in.Dst {
						return
					}
					g.acrossCall[touch(r)] = true
				})
			}
		})
	}
	// Parameters arrive in caller-saved argument registers but are moved
	// into their colors at entry, so they do not need callee-saved colors
	// unless live across a call, which the walk above already detected.
	return g
}

// paletteSize returns how many colors node i may take.
func (g *graph) paletteSize(i int, tgt Target) int {
	if g.acrossCall[i] {
		return len(tgt.CalleeSaved)
	}
	return tgt.Colors()
}

// palette lists the allowed colors for node i, cheapest first: caller-saved
// before callee-saved for values not live across calls, so leaf paths avoid
// prologue save/restore traffic.
func (g *graph) palette(i int, tgt Target) []int {
	if g.acrossCall[i] {
		return tgt.CalleeSaved
	}
	out := make([]int, 0, tgt.Colors())
	out = append(out, tgt.CallerSaved...)
	out = append(out, tgt.CalleeSaved...)
	return out
}

// ---- coloring ----

// color assigns PhysOf for all nodes or returns the webs to spill.
func color(g *graph, tgt Target, strat Strategy, res *Allocation) []ir.Reg {
	n := len(g.nodes)
	if n == 0 {
		return nil
	}
	order := make([]int, 0, n)

	switch strat {
	case Chaitin:
		removed := make([]bool, n)
		degree := append([]int(nil), g.degree...)
		var stack []int
		left := n
		for left > 0 {
			// Simplify: remove any node with degree < palette size.
			found := -1
			for i := 0; i < n; i++ {
				if !removed[i] && degree[i] < g.paletteSize(i, tgt) {
					found = i
					break
				}
			}
			if found == -1 {
				// Blocked: pick the cheapest spill candidate but push it
				// optimistically (Briggs); real spill happens only if
				// select cannot color it.
				best, bestScore := -1, 0.0
				for i := 0; i < n; i++ {
					if removed[i] || g.noSpill[i] {
						continue
					}
					score := g.cost[i] / float64(degree[i]+1)
					if best == -1 || score < bestScore {
						best, bestScore = i, score
					}
				}
				if best == -1 {
					// Everything left is unspillable; force the densest.
					for i := 0; i < n; i++ {
						if !removed[i] {
							best = i
							break
						}
					}
				}
				found = best
			}
			removed[found] = true
			left--
			stack = append(stack, found)
			for nb := range g.adj[found] {
				if !removed[nb] {
					degree[nb]--
				}
			}
		}
		// Select order: reverse of removal.
		for i := len(stack) - 1; i >= 0; i-- {
			order = append(order, stack[i])
		}
	case UsageCount:
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		sort.SliceStable(order, func(a, b int) bool {
			ia, ib := order[a], order[b]
			// Spill temporaries first: they are mandatory short ranges.
			if g.noSpill[ia] != g.noSpill[ib] {
				return g.noSpill[ia]
			}
			return g.cost[ia] > g.cost[ib]
		})
	}

	colorOf := make([]int, n)
	for i := range colorOf {
		colorOf[i] = -1
	}
	var spilled []ir.Reg
	for _, i := range order {
		used := make(map[int]bool)
		for nb := range g.adj[i] {
			if c := colorOf[nb]; c >= 0 {
				used[c] = true
			}
		}
		got := -1
		for _, c := range g.palette(i, tgt) {
			if !used[c] {
				got = c
				break
			}
		}
		if got == -1 {
			spilled = append(spilled, g.nodes[i])
			continue
		}
		colorOf[i] = got
	}
	if len(spilled) > 0 {
		return spilled
	}
	for i, r := range g.nodes {
		res.PhysOf[r] = colorOf[i]
	}
	return nil
}

func usedCalleeSaved(res *Allocation, tgt Target) []int {
	calleeSet := make(map[int]bool, len(tgt.CalleeSaved))
	for _, c := range tgt.CalleeSaved {
		calleeSet[c] = true
	}
	seen := make(map[int]bool)
	var out []int
	for _, c := range res.PhysOf {
		if calleeSet[c] && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// ---- spill code ----

// insertSpillCode rewrites f so each web in spills lives in a stack slot:
// a store after every def, a reload into a fresh temporary before every
// use. The MemRefs are RefSpill; bypass/last bits are assigned later by the
// unified-management pass.
func insertSpillCode(f *ir.Func, spills []ir.Reg) {
	slotOf := make(map[ir.Reg]int, len(spills))
	for _, r := range spills {
		slotOf[r] = f.SpillSlots
		f.SpillSlots++
	}

	// Parameters: a spilled parameter web is recorded on the function so
	// the prologue stores the incoming value straight to its slot; the
	// parameter register itself disappears from the body (all its uses
	// become reloads) and needs no color.
	for i, p := range f.Params {
		if slot, ok := slotOf[p]; ok {
			if f.ParamSpillSlot == nil {
				f.ParamSpillSlot = make(map[int]int)
			}
			f.ParamSpillSlot[i] = slot
		}
	}

	var scratch []ir.Reg
	for _, b := range f.Blocks {
		var out []ir.Instr
		for i := range b.Instrs {
			in := b.Instrs[i]

			// Reload each spilled use into its own temporary.
			scratch = in.AppendUses(scratch[:0])
			reloaded := make(map[ir.Reg]ir.Reg)
			for _, u := range scratch {
				slot, ok := slotOf[u]
				if !ok {
					continue
				}
				if _, done := reloaded[u]; done {
					continue
				}
				tmp := f.NewReg()
				reloaded[u] = tmp
				out = append(out, ir.Instr{
					Op: ir.OpLoad, Dst: tmp, A: ir.NoReg,
					Ref: &ir.MemRef{Kind: ir.RefSpill, Slot: slot, AliasSet: -1},
					Pos: in.Pos,
				})
			}
			if len(reloaded) > 0 {
				in.MapUses(func(r ir.Reg) ir.Reg {
					if t, ok := reloaded[r]; ok {
						return t
					}
					return r
				})
			}

			// Redirect a spilled def into a temporary and store it.
			if d := in.Def(); d != ir.NoReg {
				if slot, ok := slotOf[d]; ok {
					tmp := f.NewReg()
					in.Dst = tmp
					out = append(out, in)
					out = append(out, ir.Instr{
						Op: ir.OpStore, A: ir.NoReg, B: tmp,
						Ref: &ir.MemRef{Kind: ir.RefSpill, Slot: slot, AliasSet: -1},
						Pos: in.Pos,
					})
					continue
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	f.Renumber()
}
