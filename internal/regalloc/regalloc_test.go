package regalloc

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/irinterp"
	"repro/internal/mcgen"
	"repro/internal/parser"
	"repro/internal/sem"
)

// testTarget mimics the UM32 allocatable set: 8 caller-saved (t0-t7 =
// 8..15) and 8 callee-saved (s0-s7 = 16..23).
var testTarget = Target{
	CallerSaved: []int{8, 9, 10, 11, 12, 13, 14, 15},
	CalleeSaved: []int{16, 17, 18, 19, 20, 21, 22, 23},
}

// tinyTarget forces spilling.
var tinyTarget = Target{
	CallerSaved: []int{8, 9},
	CalleeSaved: []int{16},
}

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	prog, err := irgen.Build(info)
	if err != nil {
		t.Fatalf("irgen: %v", err)
	}
	return prog
}

func allocAll(t *testing.T, prog *ir.Program, tgt Target, strat Strategy) map[string]*Allocation {
	t.Helper()
	out := make(map[string]*Allocation)
	for _, f := range prog.Funcs {
		dataflow.SplitWebs(f)
		a, err := Allocate(f, tgt, strat)
		if err != nil {
			t.Fatalf("allocate %s: %v", f.Name, err)
		}
		if err := f.Verify(); err != nil {
			t.Fatalf("verify %s after alloc: %v", f.Name, err)
		}
		out[f.Name] = a
	}
	return out
}

// checkValidColoring rebuilds the interference graph and asserts the
// assignment is a proper coloring with palette constraints respected.
func checkValidColoring(t *testing.T, f *ir.Func, a *Allocation, tgt Target) {
	t.Helper()
	g := buildGraph(f)
	calleeSet := map[int]bool{}
	for _, c := range tgt.CalleeSaved {
		calleeSet[c] = true
	}
	for i, r := range g.nodes {
		c, ok := a.PhysOf[r]
		if !ok {
			t.Fatalf("%s: register %s not colored", f.Name, r)
		}
		for nb := range g.adj[i] {
			nr := g.nodes[nb]
			if nc, ok := a.PhysOf[nr]; ok && nc == c {
				t.Errorf("%s: interfering %s and %s share color %d", f.Name, r, nr, c)
			}
		}
		if g.acrossCall[i] && !calleeSet[c] {
			t.Errorf("%s: %s live across call got caller-saved color %d", f.Name, r, c)
		}
	}
}

const pressureSrc = `
int f(int a, int b) { return a * b + 1; }
void main() {
    int a; int b; int c; int d; int e;
    int g; int h; int i; int j; int k;
    a = 1; b = 2; c = 3; d = 4; e = 5;
    g = 6; h = 7; i = 8; j = 9; k = 10;
    a = f(a, b);
    print(a + b + c + d + e + g + h + i + j + k);
    print(a * b - c * d + e * g - h * i + j * k);
}
`

func TestChaitinValidColoring(t *testing.T) {
	prog := build(t, pressureSrc)
	allocs := allocAll(t, prog, testTarget, Chaitin)
	for _, f := range prog.Funcs {
		checkValidColoring(t, f, allocs[f.Name], testTarget)
	}
}

func TestUsageCountValidColoring(t *testing.T) {
	prog := build(t, pressureSrc)
	allocs := allocAll(t, prog, testTarget, UsageCount)
	for _, f := range prog.Funcs {
		checkValidColoring(t, f, allocs[f.Name], testTarget)
	}
}

func TestSpillingUnderPressure(t *testing.T) {
	prog := build(t, pressureSrc)
	allocs := allocAll(t, prog, tinyTarget, Chaitin)
	main := allocs["main"]
	if main.SpilledWebs == 0 {
		t.Error("expected spills with a 3-register palette")
	}
	checkValidColoring(t, prog.Lookup("main"), main, tinyTarget)
	// Spill refs must exist and be RefSpill.
	spillRefs := 0
	for _, ref := range prog.Lookup("main").Refs() {
		if ref.Kind == ir.RefSpill {
			spillRefs++
		}
	}
	if spillRefs == 0 {
		t.Error("no spill references in IR after spilling")
	}
}

// Semantics must be identical before and after allocation+spilling, since
// the interpreter reads spill slots through RefSpill.
func TestSpillCodePreservesSemantics(t *testing.T) {
	srcs := []string{
		pressureSrc,
		`
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
void main() { print(fib(12)); }`,
		`
int a[20];
void main() {
    int i; int s0; int s1; int s2; int s3; int s4;
    s0 = 0; s1 = 1; s2 = 2; s3 = 3; s4 = 4;
    for (i = 0; i < 20; i++) {
        a[i] = i * i;
        s0 += a[i];
        s1 += s0;
        s2 += s1 % 7;
        s3 += s2 * 2;
        s4 += s3 - s0;
    }
    print(s0); print(s1); print(s2); print(s3); print(s4);
}`,
	}
	for k, src := range srcs {
		ref := build(t, src)
		want, err := irinterp.Run(ref, irinterp.Config{})
		if err != nil {
			t.Fatalf("case %d reference run: %v", k, err)
		}
		for _, strat := range []Strategy{Chaitin, UsageCount} {
			for _, tgt := range []Target{testTarget, tinyTarget} {
				prog := build(t, src)
				for _, f := range prog.Funcs {
					dataflow.SplitWebs(f)
					if _, err := Allocate(f, tgt, strat); err != nil {
						t.Fatalf("case %d %s: %v", k, strat, err)
					}
				}
				got, err := irinterp.Run(prog, irinterp.Config{})
				if err != nil {
					t.Fatalf("case %d %s run: %v", k, strat, err)
				}
				if got.Output != want.Output {
					t.Errorf("case %d %s/%d regs: output %q, want %q",
						k, strat, tgt.Colors(), got.Output, want.Output)
				}
			}
		}
	}
}

func TestCalleeSavedTracking(t *testing.T) {
	prog := build(t, `
int f(int x) { return x + 1; }
void main() {
    int keep;
    keep = 41;
    print(f(1) + keep);
}`)
	allocs := allocAll(t, prog, testTarget, Chaitin)
	main := allocs["main"]
	if len(main.UsedCalleeSaved) == 0 {
		t.Error("keep is live across a call; a callee-saved register must be in use")
	}
	for _, c := range main.UsedCalleeSaved {
		if c < 16 || c > 23 {
			t.Errorf("UsedCalleeSaved contains non-callee register %d", c)
		}
	}
}

func TestLeafAvoidsCalleeSaved(t *testing.T) {
	prog := build(t, `
int leaf(int x, int y) { return x * y + x - y; }
void main() { print(leaf(6, 7)); }`)
	allocs := allocAll(t, prog, testTarget, Chaitin)
	leaf := allocs["leaf"]
	if len(leaf.UsedCalleeSaved) != 0 {
		t.Errorf("leaf function should use only caller-saved registers, used callee %v",
			leaf.UsedCalleeSaved)
	}
}

func TestEmptyPaletteRejected(t *testing.T) {
	prog := build(t, `void main() { print(1); }`)
	f := prog.Lookup("main")
	if _, err := Allocate(f, Target{}, Chaitin); err == nil {
		t.Error("expected error for empty palette")
	}
}

func TestAllocationIdempotentVerify(t *testing.T) {
	// Run the allocator on every function of a program with loops, calls,
	// arrays and pointers, then verify structural invariants.
	prog := build(t, `
int a[50];
int lookup(int *v, int i) { return v[i]; }
void fill(int n) {
    int i;
    for (i = 0; i < n; i++) a[i] = i * 3 % 17;
}
void main() {
    int i;
    int best;
    fill(50);
    best = 0;
    for (i = 1; i < 50; i++) {
        if (lookup(a, i) > lookup(a, best)) best = i;
    }
    print(best);
    print(a[best]);
}`)
	want, err := irinterp.Run(build(t, `
int a[50];
int lookup(int *v, int i) { return v[i]; }
void fill(int n) {
    int i;
    for (i = 0; i < n; i++) a[i] = i * 3 % 17;
}
void main() {
    int i;
    int best;
    fill(50);
    best = 0;
    for (i = 1; i < 50; i++) {
        if (lookup(a, i) > lookup(a, best)) best = i;
    }
    print(best);
    print(a[best]);
}`), irinterp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	allocAll(t, prog, tinyTarget, Chaitin)
	got, err := irinterp.Run(prog, irinterp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Output != want.Output {
		t.Errorf("output %q, want %q", got.Output, want.Output)
	}
}

// Property: on arbitrary generated programs, both strategies produce valid
// colorings under several palettes (rebuild the interference graph after
// allocation and check no adjacent pair shares a color, and call-crossing
// values take callee-saved colors).
func TestRandomProgramsColorValidly(t *testing.T) {
	palettes := []Target{testTarget, tinyTarget,
		{CallerSaved: []int{8, 9, 10}, CalleeSaved: []int{16, 17, 18}}}
	for seed := int64(700); seed < 720; seed++ {
		src := mcgen.Program(seed)
		for _, tgt := range palettes {
			for _, strat := range []Strategy{Chaitin, UsageCount} {
				prog := build(t, src)
				for _, f := range prog.Funcs {
					dataflow.SplitWebs(f)
					a, err := Allocate(f, tgt, strat)
					if err != nil {
						t.Fatalf("seed %d %s/%d regs %s: %v",
							seed, strat, tgt.Colors(), f.Name, err)
					}
					checkValidColoring(t, f, a, tgt)
				}
			}
		}
	}
}
