// Package replay is the high-throughput trace-replay subsystem: a compact
// streaming encoding of reference traces plus a flat, allocation-free,
// set-shardable replay core that reproduces cache.SimulateTrace's
// accounting exactly.
//
// A materialized trace.Trace costs 24+ bytes per reference and must be
// held whole; the encoded form costs ~1.5–2 bytes per reference for real
// programs (delta-encoded addresses, packed control bits) and is consumed
// through a Cursor, so replay memory stays flat in trace length. The VM
// emits the encoding directly through vm.Config.TraceSink, so the replay
// path never materializes a trace.Trace at all.
//
// cache.SimulateTrace remains the reference implementation: it is the
// differential baseline the replay engine is tested against, and the only
// home of semantics that genuinely need whole-trace arrays when the
// engine is asked to avoid them (see Measure and MIN notes in engine.go).
package replay

import (
	"bufio"
	"io"
	"math/bits"
	"sync"

	"repro/internal/trace"
)

// Encoding format, one record at a time, byte-aligned:
//
//	head byte:  bit 0    kind (1 = store)
//	            bit 1    bypass
//	            bit 2    last
//	            bit 3    more (continuation bytes follow)
//	            bits 4-7 low 4 bits of zigzag(addr delta)
//	cont bytes: 7 payload bits each, bit 7 = more (LEB128)
//
// The address delta is relative to the previous record's address (the
// first record's delta is relative to 0) and zigzag-mapped so small
// negative strides stay small. Records never straddle a chunk boundary,
// so a shard worker can decode any chunk sequence without rejoining
// partial varints.
const (
	chunkSize   = 1 << 16
	maxRecBytes = 1 + 9 // head byte + ceil(60 continuation bits / 7)
)

// Encoder builds an Encoded trace incrementally. It implements
// vm.TraceSink, so a VM run can stream its reference trace straight into
// the encoding. Not safe for concurrent use.
type Encoder struct {
	chunks   [][]byte
	cur      []byte
	prev     int64
	n        int
	finished bool
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder {
	return &Encoder{cur: make([]byte, 0, chunkSize)}
}

// Ref appends one reference record. It is the vm.TraceSink method.
func (e *Encoder) Ref(r trace.Rec) {
	if len(e.cur)+maxRecBytes > chunkSize {
		e.chunks = append(e.chunks, e.cur)
		e.cur = make([]byte, 0, chunkSize)
	}
	d := r.Addr - e.prev
	z := uint64(d<<1) ^ uint64(d>>63) // zigzag
	b0 := byte(z&0xF) << 4
	z >>= 4
	if r.Kind == trace.Store {
		b0 |= 1
	}
	if r.Bypass {
		b0 |= 2
	}
	if r.Last {
		b0 |= 4
	}
	if z != 0 {
		b0 |= 8
	}
	e.cur = append(e.cur, b0)
	for z != 0 {
		b := byte(z & 0x7F)
		z >>= 7
		if z != 0 {
			b |= 0x80
		}
		e.cur = append(e.cur, b)
	}
	e.prev = r.Addr
	e.n++
}

// Finish seals the encoder and returns the immutable encoded trace. The
// encoder must not be used afterwards.
func (e *Encoder) Finish() *Encoded {
	if e.finished {
		panic("replay: Encoder.Finish called twice") //unilint:ok panicguard API-misuse guard: a second Finish would silently corrupt the stream; unreachable on the VM single-Finish path
	}
	e.finished = true
	chunks := e.chunks
	if len(e.cur) > 0 {
		chunks = append(chunks, e.cur)
	}
	e.chunks, e.cur = nil, nil
	return &Encoded{chunks: chunks, n: e.n}
}

// Encoded is an immutable, compact reference trace. It is safe for
// concurrent readers (shard workers decode it independently); the lazily
// built replay indexes are memoized under a lock.
type Encoded struct {
	chunks [][]byte
	n      int

	mu sync.Mutex
	// finalRef memoizes, per line size, the index of the last reference
	// to each line address — the flat-memory future-knowledge summary
	// Measure's dead-occupancy accounting needs (see engine.go).
	finalRef map[int64]*finalTable
	// finalBit memoizes, per line size, a bitmap with bit i set when
	// record i is the final reference to its line address. The engine
	// reads it sequentially (bit i on step i), so the per-touch finality
	// test costs one well-predicted cached load where a finalTable probe
	// would take a random hash access.
	finalBit map[int64][]uint64
	// nextUse memoizes the per-record next-use index MIN replay needs.
	// Unlike finalRef it is O(refs) memory, so only the most recent line
	// size is kept (experiments replay all MIN variants back to back).
	nextUseLW  int64
	nextUseArr []int32
}

// EncodeTrace encodes a materialized trace (tests and tools; the replay
// path itself encodes straight from the VM).
func EncodeTrace(t trace.Trace) *Encoded {
	e := NewEncoder()
	for _, r := range t {
		e.Ref(r)
	}
	return e.Finish()
}

// Len returns the number of records.
func (e *Encoded) Len() int { return e.n }

// Size returns the encoded size in bytes.
func (e *Encoded) Size() int {
	total := 0
	for _, c := range e.chunks {
		total += len(c)
	}
	return total
}

// Cursor returns a decoding cursor positioned before the first record.
// The zero cursor of an empty trace reports no records. Cursors are
// values: iteration allocates nothing.
func (e *Encoded) Cursor() Cursor {
	return Cursor{chunks: e.chunks}
}

// Records materializes the trace (tests, tools, and the legacy
// SimulateTrace baseline; the replay engine never calls this).
func (e *Encoded) Records() trace.Trace {
	out := make(trace.Trace, 0, e.n)
	c := e.Cursor()
	for {
		r, ok := c.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Count tallies the stream without materializing it.
func (e *Encoded) Count() trace.Counts {
	var n trace.Counts
	c := e.Cursor()
	for {
		r, ok := c.Next()
		if !ok {
			return n
		}
		n.Refs++
		if r.Kind == trace.Load {
			n.Loads++
		} else {
			n.Stores++
		}
		if r.Bypass {
			n.Bypass++
		}
		if r.Last {
			n.Last++
		}
	}
}

// WriteText streams the trace in trace.Trace's textual format without
// materializing it (cmd/unisim's -trace output path).
func (e *Encoded) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	c := e.Cursor()
	for {
		r, ok := c.Next()
		if !ok {
			return bw.Flush()
		}
		if err := trace.WriteRec(bw, r); err != nil {
			return err
		}
	}
}

// Cursor iterates an Encoded trace. Copy freely; Next on a copy does not
// disturb the original.
type Cursor struct {
	chunks [][]byte
	ci     int
	buf    []byte
	pos    int
	addr   int64
}

// Next decodes one record. ok is false at end of stream (or on a
// truncated stream, which only a hand-built Encoded could produce).
func (c *Cursor) Next() (r trace.Rec, ok bool) {
	if c.pos >= len(c.buf) {
		for {
			if c.ci >= len(c.chunks) {
				return trace.Rec{}, false
			}
			c.buf = c.chunks[c.ci]
			c.ci++
			c.pos = 0
			if len(c.buf) > 0 {
				break
			}
		}
	}
	b0 := c.buf[c.pos]
	c.pos++
	z := uint64(b0 >> 4)
	if b0&8 != 0 {
		shift := uint(4)
		for {
			if c.pos >= len(c.buf) {
				return trace.Rec{}, false
			}
			b := c.buf[c.pos]
			c.pos++
			z |= uint64(b&0x7F) << shift
			if b&0x80 == 0 {
				break
			}
			shift += 7
		}
	}
	c.addr += int64(z>>1) ^ -int64(z&1)
	r.Addr = c.addr
	if b0&1 != 0 {
		r.Kind = trace.Store
	}
	r.Bypass = b0&2 != 0
	r.Last = b0&4 != 0
	return r, true
}

// finalTable maps line address → index of that line's final reference.
// It is an open-addressed hash table with no deletion, so probe chains
// are contiguous and lookups are a few loads — the engine queries it on
// every touch during Measure, where a Go map lookup would dominate the
// per-reference budget. vals < 0 marks an empty slot (final indexes are
// guaranteed < 2^31 by the Measure/MIN length guard).
type finalTable struct {
	keys  []int64
	vals  []int32
	n     int
	mask  uint64
	shift uint
}

func newFinalTable(size int) *finalTable {
	t := &finalTable{
		keys:  make([]int64, size),
		vals:  make([]int32, size),
		mask:  uint64(size - 1),
		shift: uint(64 - bits.TrailingZeros(uint(size))),
	}
	for i := range t.vals {
		t.vals[i] = -1
	}
	return t
}

func (t *finalTable) get(tag int64) int32 {
	i := (uint64(tag) * 0x9E3779B97F4A7C15) >> t.shift
	for {
		v := t.vals[i]
		if v < 0 {
			return -1
		}
		if t.keys[i] == tag {
			return v
		}
		i = (i + 1) & t.mask
	}
}

func (t *finalTable) put(tag int64, idx int32) {
	i := (uint64(tag) * 0x9E3779B97F4A7C15) >> t.shift
	for {
		if t.vals[i] < 0 {
			t.keys[i] = tag
			t.vals[i] = idx
			t.n++
			return
		}
		if t.keys[i] == tag {
			t.vals[i] = idx
			return
		}
		i = (i + 1) & t.mask
	}
}

// finalRefs returns (building and memoizing on first use) the table from
// line address to the index of its final reference under the given line
// size. Memory is proportional to the program's footprint, not the trace
// length, which is what keeps Measure's occupancy accounting flat.
func (e *Encoded) finalRefs(lineWords int64) *finalTable {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.finalRefsLocked(lineWords)
}

func (e *Encoded) finalRefsLocked(lineWords int64) *finalTable {
	if t, ok := e.finalRef[lineWords]; ok {
		return t
	}
	t := newFinalTable(1 << 10)
	c := e.Cursor()
	for i := 0; ; i++ {
		r, ok := c.Next()
		if !ok {
			break
		}
		if 2*t.n >= len(t.keys) {
			grown := newFinalTable(2 * len(t.keys))
			for j, v := range t.vals {
				if v >= 0 {
					grown.put(t.keys[j], v)
				}
			}
			t = grown
		}
		t.put(r.Addr/lineWords, int32(i))
	}
	if e.finalRef == nil {
		e.finalRef = make(map[int64]*finalTable)
	}
	e.finalRef[lineWords] = t
	return t
}

// finalBits returns (building and memoizing per line size) the
// final-reference bitmap: bit i is set when record i is the last
// reference to its line address. Derived from the finalRefs table, so
// memory stays proportional to trace length / 8 plus footprint.
func (e *Encoded) finalBits(lineWords int64) []uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if b, ok := e.finalBit[lineWords]; ok {
		return b
	}
	t := e.finalRefsLocked(lineWords)
	b := make([]uint64, (e.n+63)/64)
	for _, v := range t.vals {
		if v >= 0 {
			b[v>>6] |= 1 << (uint(v) & 63)
		}
	}
	if e.finalBit == nil {
		e.finalBit = make(map[int64][]uint64)
	}
	e.finalBit[lineWords] = b
	return b
}

// never32 marks "no future reference" in next-use indexes. Strictly
// greater than any record index the engine accepts.
const never32 = int32(1<<31 - 1)

// nextUses returns (building and memoizing for the most recent line size)
// the per-record next-use index array MIN replay requires. This is the one
// replay mode that inherently costs O(refs) memory — 4 bytes per
// reference, a sixth of a materialized trace.Trace — because Belady
// victims need per-line future knowledge, not just finality.
func (e *Encoded) nextUses(lineWords int64) ([]int32, bool) {
	if e.n >= int(never32) {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.nextUseArr != nil && e.nextUseLW == lineWords {
		return e.nextUseArr, true
	}
	arr := make([]int32, e.n)
	lastSeen := make(map[int64]int32)
	c := e.Cursor()
	for i := int32(0); ; i++ {
		r, ok := c.Next()
		if !ok {
			break
		}
		arr[i] = never32
		la := r.Addr / lineWords
		if p, seen := lastSeen[la]; seen {
			arr[p] = i
		}
		lastSeen[la] = i
	}
	e.nextUseLW = lineWords
	e.nextUseArr = arr
	return arr, true
}
