package replay

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// randomTrace builds a deterministic pseudo-random trace exercising
// small strides, large jumps, negative addresses, and all flag
// combinations.
func randomTrace(seed int64, n int) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := make(trace.Trace, 0, n)
	addr := int64(0)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			addr = rng.Int63n(1 << 40)
		case 1:
			addr = -rng.Int63n(1 << 40)
		case 2:
			addr += rng.Int63n(1<<20) - 1<<19
		default:
			addr += rng.Int63n(16) - 8
		}
		r := trace.Rec{Addr: addr, Bypass: rng.Intn(4) == 0, Last: rng.Intn(8) == 0}
		if rng.Intn(3) == 0 {
			r.Kind = trace.Store
		}
		t = append(t, r)
	}
	return t
}

func TestCodecRoundTrip(t *testing.T) {
	cases := []trace.Trace{
		nil,
		{},
		{{Addr: 0}},
		{{Addr: -1, Kind: trace.Store, Bypass: true, Last: true}},
		{{Addr: 1<<62 - 1}, {Addr: -(1<<62 - 1)}, {Addr: 0}},
		randomTrace(1, 10),
		randomTrace(2, 1000),
		randomTrace(3, 200_000), // spans multiple chunks
	}
	for ci, in := range cases {
		enc := EncodeTrace(in)
		if enc.Len() != len(in) {
			t.Fatalf("case %d: Len = %d, want %d", ci, enc.Len(), len(in))
		}
		out := enc.Records()
		if len(out) != len(in) {
			t.Fatalf("case %d: decoded %d records, want %d", ci, len(out), len(in))
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("case %d: record %d = %+v, want %+v", ci, i, out[i], in[i])
			}
		}
		// Counts agree with the materialized tally.
		if got, want := enc.Count(), trace.Trace(out).Count(); got != want {
			t.Fatalf("case %d: Count = %+v, want %+v", ci, got, want)
		}
	}
}

func TestCodecCompactness(t *testing.T) {
	// Unit-stride references (the common case in real traces) must encode
	// in ~1 byte per record — the memory-flatness claim depends on it.
	tr := make(trace.Trace, 100_000)
	for i := range tr {
		tr[i] = trace.Rec{Addr: int64(i % 4096)}
	}
	enc := EncodeTrace(tr)
	if bpr := float64(enc.Size()) / float64(enc.Len()); bpr > 2 {
		t.Fatalf("unit-stride encoding is %.2f bytes/record, want <= 2", bpr)
	}
}

func TestCursorCopyIndependence(t *testing.T) {
	in := randomTrace(4, 100)
	enc := EncodeTrace(in)
	c1 := enc.Cursor()
	for i := 0; i < 50; i++ {
		c1.Next()
	}
	c2 := c1 // copy mid-stream
	r1, _ := c1.Next()
	r2, _ := c2.Next()
	if r1 != r2 {
		t.Fatalf("copied cursor diverged: %+v vs %+v", r1, r2)
	}
}

func TestWriteTextMatchesTraceWrite(t *testing.T) {
	in := randomTrace(5, 500)
	var want, got bytes.Buffer
	if err := in.Write(&want); err != nil {
		t.Fatal(err)
	}
	if err := EncodeTrace(in).WriteText(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("WriteText differs from trace.Write")
	}
}

func TestTagIndexAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	idx := newTagIndex(64)
	ref := make(map[int64]int32)
	live := []int64{}
	for op := 0; op < 200_000; op++ {
		switch {
		case len(ref) < 64 && (len(ref) == 0 || rng.Intn(2) == 0):
			tag := rng.Int63n(512)
			if _, ok := ref[tag]; ok {
				break
			}
			v := int32(rng.Intn(1 << 20))
			idx.put(tag, v)
			ref[tag] = v
			live = append(live, tag)
		default:
			k := rng.Intn(len(live))
			tag := live[k]
			idx.del(tag)
			delete(ref, tag)
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		// Spot-check membership on a window of tags.
		for probe := int64(0); probe < 512; probe += 37 {
			want, ok := ref[probe]
			got := idx.get(probe)
			if ok && got != int(want) {
				t.Fatalf("op %d: get(%d) = %d, want %d", op, probe, got, want)
			}
			if !ok && got != -1 {
				t.Fatalf("op %d: get(%d) = %d, want absent", op, probe, got)
			}
		}
	}
}
