// Differential coverage for the replay engine against the original
// simulator on real traces: the six paper benchmarks and a progen corpus,
// across associative, direct-mapped, and non-LRU geometries, at several
// worker counts. It lives in an external test package because it drives
// internal/experiments (which itself imports replay) to build the
// benchmark workloads.
package replay_test

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/progen"
	"repro/internal/replay"
	"repro/internal/vm"
)

// diffGeometries is the sweep each trace goes through: the paper's 2-way
// LRU shape with the full unified feature set, a FIFO variant, and a
// direct-mapped cache with multi-word lines (exercising the word-offset
// and demote-not-discard paths).
func diffGeometries() []cache.Config {
	return []cache.Config{
		{Sets: 32, Ways: 2, LineWords: 1, Policy: cache.LRU, Dead: cache.DeadInvalidate, HonorBypass: true, Seed: 1},
		{Sets: 16, Ways: 4, LineWords: 1, Policy: cache.FIFO, Dead: cache.DeadOff, HonorBypass: true, Seed: 1},
		{Sets: 64, Ways: 1, LineWords: 4, Policy: cache.LRU, Dead: cache.DeadDemote, HonorBypass: false, Seed: 1},
	}
}

// diffOne checks one encoded trace against SimulateTrace across the
// geometry sweep and worker counts 1, 2, 4, 8. Sharded replay must be
// bit-identical to the sequential simulator for every worker count.
func diffOne(t *testing.T, name string, enc *replay.Encoded) {
	t.Helper()
	tr := enc.Records()
	for _, cfg := range diffGeometries() {
		want, err := cache.SimulateTrace(tr, cfg)
		if err != nil {
			t.Fatalf("%s: simulate: %v", name, err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got, err := replay.Replay(enc, cfg, workers)
			if err != nil {
				t.Fatalf("%s: replay workers=%d: %v", name, workers, err)
			}
			if got != want.Stats {
				t.Errorf("%s cfg %+v workers=%d:\nreplay   = %+v\nsimulate = %+v",
					name, cfg, workers, got, want.Stats)
			}
		}
	}
}

// TestReplayMatchesSimulatorOnBenchmarks replays the six paper
// benchmarks' full traces (≈23.5M references) through every geometry and
// worker count. Skipped in -short mode; the progen corpus below keeps
// real-program coverage cheap.
func TestReplayMatchesSimulatorOnBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark traces are slow; progen corpus covers -short")
	}
	ws, err := experiments.BuildAll(experiments.PaperGeometry(), experiments.Optimizing)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		diffOne(t, w.Bench.Name, w.Trace)
	}
}

// TestReplayMatchesSimulatorOnProgenCorpus runs 50 generated programs
// through the compiler and VM with the streaming encoder attached, then
// differentially replays each captured trace. Programs that trap at
// runtime (the generator permits division by zero) still produce a valid
// partial trace and stay in the corpus.
func TestReplayMatchesSimulatorOnProgenCorpus(t *testing.T) {
	const seeds = 50
	kept := 0
	for seed := int64(1); seed <= seeds; seed++ {
		src := progen.Source(seed, progen.DefaultKnobs())
		comp, err := core.Compile(src, core.Config{Mode: core.Unified, Check: true})
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		prog, err := codegen.Generate(comp)
		if err != nil {
			t.Fatalf("seed %d: codegen: %v", seed, err)
		}
		sink := replay.NewEncoder()
		_, err = vm.Run(prog, vm.Config{
			MemWords:  1 << 16,
			MaxSteps:  2_000_000,
			Cache:     cache.DefaultConfig(),
			TraceSink: sink,
		})
		enc := sink.Finish()
		if err != nil && enc.Len() == 0 {
			continue // trapped before the first data reference
		}
		if enc.Len() == 0 {
			continue // pure register program, nothing to replay
		}
		kept++
		diffOne(t, fmt.Sprintf("seed-%d", seed), enc)
	}
	if kept < seeds/2 {
		t.Fatalf("only %d/%d progen seeds produced usable traces", kept, seeds)
	}
}

// TestBatchMatchesSingle pins the batched entry points to their
// one-config forms: MeasureBatch and ReplayBatch decode once and step
// many engines, and every element must be bit-identical (floats
// included) to the corresponding standalone call.
func TestBatchMatchesSingle(t *testing.T) {
	src := progen.Source(3, progen.DefaultKnobs())
	comp, err := core.Compile(src, core.Config{Mode: core.Unified, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Generate(comp)
	if err != nil {
		t.Fatal(err)
	}
	sink := replay.NewEncoder()
	if _, err := vm.Run(prog, vm.Config{
		MemWords: 1 << 16, MaxSteps: 2_000_000,
		Cache: cache.DefaultConfig(), TraceSink: sink,
	}); err != nil {
		t.Fatal(err)
	}
	enc := sink.Finish()
	if enc.Len() == 0 {
		t.Fatal("seed produced an empty trace")
	}

	var cfgs []cache.Config
	for _, pol := range []cache.Policy{cache.LRU, cache.FIFO, cache.Random, cache.MIN} {
		for _, dead := range []cache.DeadMode{cache.DeadOff, cache.DeadInvalidate} {
			cfgs = append(cfgs, cache.Config{
				Sets: 8, Ways: 2, LineWords: 1, Policy: pol,
				Dead: dead, HonorBypass: true, Seed: 1,
			})
		}
	}

	gotM, err := replay.MeasureBatch(enc, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := replay.ReplayBatch(enc, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		wantM, err := replay.Measure(enc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if gotM[i] != wantM {
			t.Errorf("cfg %+v: MeasureBatch = %+v, Measure = %+v", cfg, gotM[i], wantM)
		}
		if gotR[i] != wantM.Stats {
			t.Errorf("cfg %+v: ReplayBatch = %+v, want %+v", cfg, gotR[i], wantM.Stats)
		}
	}
}
