package replay

import (
	"math/bits"

	"repro/internal/cache"
	"repro/internal/trace"
)

// The engine is a flat struct-of-arrays mirror of cache.SimulateTrace:
// line state lives in parallel slices indexed set*ways+way, victim
// pre-scans (first invalid way, first dead way) use per-set bitsets, and
// tag lookup uses either a direct way scan (small associativity) or an
// open-addressed hash index (large associativity, e.g. E2's 256-way
// fully-associative sweeps). Everything is allocated at construction;
// the per-reference step allocates nothing — a property enforced by
// TestReplayZeroAllocs.
//
// Equivalence with SimulateTrace is field-exact, including the
// floating-point dead-occupancy metrics. SimulateTrace decides a sampled
// line is dead when its stored next-use index has passed or is absent;
// since any reference to a resident line touches it (refreshing the
// stored index), the "already passed" arm is unreachable, and a resident
// line is dead exactly when its most recent touch was the final
// reference to its line address in the whole trace. The engine therefore
// needs only a line-address → final-reference-index map (memory flat in
// trace length), not the per-record next-use array — except under MIN,
// whose Belady victim choice genuinely requires per-record future
// knowledge (Encoded.nextUses).

// sampleEvery matches cache.SimulateTrace's sampling stride; the
// differential tests pin the two implementations together.
const sampleEvery = 64

// directLookupMaxWays is the associativity above which tag lookup
// switches from a linear way scan to the hash index.
const directLookupMaxWays = 8

type engine struct {
	cfg     cache.Config
	ways    int
	lw      int64
	setMask int64
	lo, hi  int // set shard [lo, hi)

	// Hot-loop copies of the cfg fields step consults per reference, so
	// the loop reads scalars instead of chasing the embedded struct.
	honor    bool
	deadMode cache.DeadMode
	policy   cache.Policy
	lw1      bool // LineWords == 1

	// Per-line state, indexed set*ways+way.
	valid []bool
	dirty []bool
	dead  []bool
	tags  []int64
	last  []int64 // LRU timestamp
	seq   []int64 // FIFO insertion order
	refs  []int64
	nuse  []int32 // stored next-use index (MIN only)

	// Per-set way bitsets (wps words each): invalid has a bit per
	// not-valid way, deadbs a bit per demoted way. They turn the victim
	// pre-scans into find-first-set.
	wps     int
	invalid []uint64
	deadbs  []uint64

	idx *tagIndex // tag → line index; nil when ways <= directLookupMaxWays

	tick int64
	rng  uint64
	st   cache.Stats

	// MIN future knowledge (nil otherwise).
	nextUse []int32

	// Dead-occupancy measurement (Measure only).
	measure  bool
	finalBit []uint64 // bit per record: final touch of its line (non-MIN)
	deadRes  []bool   // line's last touch was its final reference
	validCnt int
	deadNow  int
	linesF   float64
	occSum   float64
	resSum   float64
	samples  int
}

func newEngine(cfg cache.Config, lo, hi int) *engine {
	lines := cfg.Sets * cfg.Ways
	wps := (cfg.Ways + 63) / 64
	eng := &engine{
		cfg:      cfg,
		ways:     cfg.Ways,
		lw:       int64(cfg.LineWords),
		setMask:  int64(cfg.Sets - 1),
		lo:       lo,
		hi:       hi,
		honor:    cfg.HonorBypass,
		deadMode: cfg.Dead,
		policy:   cfg.Policy,
		lw1:      cfg.LineWords == 1,
		valid:    make([]bool, lines),
		dirty:    make([]bool, lines),
		dead:     make([]bool, lines),
		tags:     make([]int64, lines),
		last:     make([]int64, lines),
		seq:      make([]int64, lines),
		refs:     make([]int64, lines),
		wps:      wps,
		invalid:  make([]uint64, cfg.Sets*wps),
		deadbs:   make([]uint64, cfg.Sets*wps),
		rng:      cfg.Seed | 1,
		linesF:   float64(lines),
	}
	for s := 0; s < cfg.Sets; s++ {
		for k := 0; k < wps; k++ {
			n := cfg.Ways - k*64
			if n >= 64 {
				eng.invalid[s*wps+k] = ^uint64(0)
			} else {
				eng.invalid[s*wps+k] = 1<<uint(n) - 1
			}
		}
	}
	if cfg.Ways > directLookupMaxWays {
		eng.idx = newTagIndex((hi - lo) * cfg.Ways)
	}
	return eng
}

// run replays the full stream, stepping only references that map into
// the engine's set shard. Decoding is inlined over the chunk bytes
// rather than going through a Cursor: records never straddle chunks, so
// the end-of-chunk check runs once per chunk instead of once per record,
// and the per-record cost is a handful of arithmetic ops.
func (eng *engine) run(enc *Encoded) {
	i := 0
	addr := int64(0)
	for _, buf := range enc.chunks {
		pos := 0
		for pos < len(buf) {
			b0 := buf[pos]
			pos++
			z := uint64(b0 >> 4)
			if b0&8 != 0 {
				shift := uint(4)
				for {
					b := buf[pos]
					pos++
					z |= uint64(b&0x7F) << shift
					if b&0x80 == 0 {
						break
					}
					shift += 7
				}
			}
			addr += int64(z>>1) ^ -int64(z&1)
			var r trace.Rec
			r.Addr = addr
			if b0&1 != 0 {
				r.Kind = trace.Store
			}
			r.Bypass = b0&2 != 0
			r.Last = b0&4 != 0
			eng.step(i, r)
			i++
		}
	}
}

// runBatch replays the full stream through several engines in one
// decoding pass: each record is decoded once and stepped into every
// engine. The engines share nothing but the read-only encoded trace (and
// any shared future-knowledge arrays), so per-engine results are
// identical to running each alone — batching saves only the repeated
// decode work, which is what E2/E3's many-configurations-one-trace
// experiments spend a large share of their time on.
func runBatch(enc *Encoded, engs []*engine) {
	if len(engs) == 1 {
		engs[0].run(enc)
		return
	}
	i := 0
	addr := int64(0)
	for _, buf := range enc.chunks {
		pos := 0
		for pos < len(buf) {
			b0 := buf[pos]
			pos++
			z := uint64(b0 >> 4)
			if b0&8 != 0 {
				shift := uint(4)
				for {
					b := buf[pos]
					pos++
					z |= uint64(b&0x7F) << shift
					if b&0x80 == 0 {
						break
					}
					shift += 7
				}
			}
			addr += int64(z>>1) ^ -int64(z&1)
			var r trace.Rec
			r.Addr = addr
			if b0&1 != 0 {
				r.Kind = trace.Store
			}
			r.Bypass = b0&2 != 0
			r.Last = b0&4 != 0
			for _, eng := range engs {
				eng.step(i, r)
			}
			i++
		}
	}
}

func (eng *engine) step(i int, r trace.Rec) {
	tag := r.Addr
	if eng.lw != 1 {
		tag = r.Addr / eng.lw
	}
	set := int(tag & eng.setMask)
	if set < eng.lo || set >= eng.hi {
		return
	}
	st := &eng.st
	st.Refs++

	if r.Bypass && eng.honor {
		st.BypassRefs++
		if li := eng.lookup(set, tag); li >= 0 {
			eng.tick++
			eng.last[li] = eng.tick
			eng.refs[li]++
			eng.noteTouch(li, i)
			if r.Kind == trace.Store {
				// UmAm_STORE updates memory; cached copy refreshed.
				st.BypassWrites++
			}
			if r.Last {
				eng.deadMark(li, set)
			}
		} else if r.Kind == trace.Load {
			st.BypassReads++
		} else {
			st.BypassWrites++
		}
		eng.maybeSample()
		return
	}

	st.CachedRefs++
	if li := eng.lookup(set, tag); li >= 0 {
		st.Hits++
		eng.tick++
		eng.last[li] = eng.tick
		eng.refs[li]++
		eng.noteTouch(li, i)
		if r.Kind == trace.Store {
			eng.dirty[li] = true
		}
		eng.setDead(li, set, false)
		if r.Last {
			eng.deadMark(li, set)
		}
	} else {
		st.Misses++
		li := eng.victim(set)
		eng.evictLine(li, set)
		eng.valid[li] = true
		eng.tags[li] = tag
		eng.clearInvalidBit(li, set)
		if eng.idx != nil {
			eng.idx.put(tag, int32(li))
		}
		eng.refs[li] = 1
		if eng.measure {
			eng.validCnt++
		}
		eng.noteTouch(li, i)
		eng.tick++
		eng.last[li] = eng.tick
		eng.seq[li] = eng.tick
		if r.Kind == trace.Store {
			if eng.lw1 {
				st.StoreAllocs++
			} else {
				st.Fetches++
			}
			eng.dirty[li] = true
		} else {
			st.Fetches++
			eng.dirty[li] = false
		}
		if r.Last {
			eng.deadMark(li, set)
		}
	}
	eng.maybeSample()
}

func (eng *engine) lookup(set int, tag int64) int {
	if eng.idx != nil {
		return eng.idx.get(tag)
	}
	base := set * eng.ways
	for li := base; li < base+eng.ways; li++ {
		// Tag compared first — it almost always decides, so the common
		// case is one load per way; the valid check guards against a
		// stale tag left on an invalidated line.
		if eng.tags[li] == tag && eng.valid[li] {
			return li
		}
	}
	return -1
}

// noteTouch refreshes the per-line future knowledge on every touch
// (bypass hit, cached hit, fill), mirroring SimulateTrace's
// ln.nextUse = nextUse[i].
func (eng *engine) noteTouch(li, i int) {
	if eng.nextUse != nil {
		eng.nuse[li] = eng.nextUse[i]
	}
	if eng.measure {
		var fin bool
		if eng.nextUse != nil {
			fin = eng.nextUse[i] == never32
		} else {
			fin = eng.finalBit[uint(i)>>6]>>(uint(i)&63)&1 != 0
		}
		if fin != eng.deadRes[li] {
			eng.deadRes[li] = fin
			if fin {
				eng.deadNow++
			} else {
				eng.deadNow--
			}
		}
	}
}

func (eng *engine) maybeSample() {
	if !eng.measure {
		return
	}
	if eng.st.Refs%sampleEvery == 0 {
		// Identical float accumulation order to SimulateTrace's sample():
		// one division added per sample, resident count added per sample.
		// (Its `valid > 0` guard is vacuous for occSum — deadNow is zero
		// when nothing is resident — but mirror it anyway.)
		if eng.validCnt > 0 {
			eng.occSum += float64(eng.deadNow) / eng.linesF
		}
		eng.resSum += float64(eng.validCnt)
		eng.samples++
	}
}

func (eng *engine) victim(set int) int {
	base := set * eng.ways
	bw := set * eng.wps
	for k := 0; k < eng.wps; k++ {
		if v := eng.invalid[bw+k]; v != 0 {
			return base + k<<6 + bits.TrailingZeros64(v)
		}
	}
	for k := 0; k < eng.wps; k++ {
		if v := eng.deadbs[bw+k]; v != 0 {
			return base + k<<6 + bits.TrailingZeros64(v)
		}
	}
	switch eng.policy {
	case cache.FIFO:
		best := base
		for li := base + 1; li < base+eng.ways; li++ {
			if eng.seq[li] < eng.seq[best] {
				best = li
			}
		}
		return best
	case cache.Random:
		return base + int(eng.nextRand()%uint64(eng.ways))
	case cache.MIN:
		best := base
		for li := base + 1; li < base+eng.ways; li++ {
			if eng.nuse[li] > eng.nuse[best] {
				best = li
			}
		}
		return best
	default: // LRU
		best := base
		for li := base + 1; li < base+eng.ways; li++ {
			if eng.last[li] < eng.last[best] {
				best = li
			}
		}
		return best
	}
}

func (eng *engine) evictLine(li, set int) {
	if !eng.valid[li] {
		return
	}
	eng.st.Evictions++
	if eng.refs[li] == 1 {
		eng.st.SingleUseFills++
	}
	if eng.dirty[li] {
		eng.st.Writebacks++
	}
	eng.invalidate(li, set)
}

func (eng *engine) invalidate(li, set int) {
	eng.valid[li] = false
	eng.dirty[li] = false
	eng.setDead(li, set, false)
	eng.setInvalidBit(li, set)
	if eng.idx != nil {
		eng.idx.del(eng.tags[li])
	}
	if eng.measure {
		eng.validCnt--
		if eng.deadRes[li] {
			eng.deadRes[li] = false
			eng.deadNow--
		}
	}
}

func (eng *engine) deadMark(li, set int) {
	switch eng.deadMode {
	case cache.DeadOff:
		return
	case cache.DeadDemote:
		eng.st.DeadMarks++
		eng.setDead(li, set, true)
		eng.last[li] = -1
		eng.seq[li] = -1
	case cache.DeadInvalidate:
		eng.st.DeadMarks++
		if eng.dirty[li] && !eng.lw1 {
			// Sibling words may still be live: demote instead of dropping.
			eng.setDead(li, set, true)
			eng.last[li] = -1
			eng.seq[li] = -1
			return
		}
		if eng.dirty[li] {
			eng.st.DeadDiscards++
		}
		if eng.refs[li] == 1 {
			eng.st.SingleUseFills++
		}
		eng.invalidate(li, set)
	}
}

func (eng *engine) setDead(li, set int, v bool) {
	if eng.dead[li] == v {
		return
	}
	eng.dead[li] = v
	w := li - set*eng.ways
	word := set*eng.wps + w>>6
	bit := uint64(1) << uint(w&63)
	if v {
		eng.deadbs[word] |= bit
	} else {
		eng.deadbs[word] &^= bit
	}
}

func (eng *engine) setInvalidBit(li, set int) {
	w := li - set*eng.ways
	eng.invalid[set*eng.wps+w>>6] |= uint64(1) << uint(w&63)
}

func (eng *engine) clearInvalidBit(li, set int) {
	w := li - set*eng.ways
	eng.invalid[set*eng.wps+w>>6] &^= uint64(1) << uint(w&63)
}

// nextRand is SimulateTrace's xorshift64* stream, bit for bit.
func (eng *engine) nextRand() uint64 {
	x := eng.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	eng.rng = x
	return x * 0x2545F4914F6CDD1D
}

// tagIndex is a fixed-capacity open-addressed hash table from line tag
// to line index, used when associativity makes the linear way scan the
// bottleneck (E2 replays 256-way fully-associative caches). Capacity is
// 4× the shard's line count, so load factor never exceeds 1/4 and the
// table never grows — which is what keeps lookups allocation-free.
// Deletion uses backward-shift compaction (no tombstones).
type tagIndex struct {
	keys  []int64
	vals  []int32
	used  []bool
	mask  uint64
	shift uint
}

func newTagIndex(lines int) *tagIndex {
	size := 4
	for size < 4*lines {
		size <<= 1
	}
	return &tagIndex{
		keys:  make([]int64, size),
		vals:  make([]int32, size),
		used:  make([]bool, size),
		mask:  uint64(size - 1),
		shift: uint(64 - bits.TrailingZeros(uint(size))),
	}
}

func (t *tagIndex) home(tag int64) uint64 {
	return (uint64(tag) * 0x9E3779B97F4A7C15) >> t.shift
}

func (t *tagIndex) get(tag int64) int {
	i := t.home(tag)
	for t.used[i] {
		if t.keys[i] == tag {
			return int(t.vals[i])
		}
		i = (i + 1) & t.mask
	}
	return -1
}

// put inserts tag (which must not be present).
func (t *tagIndex) put(tag int64, val int32) {
	i := t.home(tag)
	for t.used[i] {
		i = (i + 1) & t.mask
	}
	t.used[i] = true
	t.keys[i] = tag
	t.vals[i] = val
}

// del removes tag if present, backward-shifting any displaced followers
// so probe chains stay contiguous.
func (t *tagIndex) del(tag int64) {
	i := t.home(tag)
	for {
		if !t.used[i] {
			return
		}
		if t.keys[i] == tag {
			break
		}
		i = (i + 1) & t.mask
	}
	j := i
	for {
		t.used[i] = false
		for {
			j = (j + 1) & t.mask
			if !t.used[j] {
				return
			}
			h := t.home(t.keys[j])
			// Move j's entry into the hole at i unless its home lies in
			// (i, j] cyclically (in which case it is still reachable).
			if (j > i && (h <= i || h > j)) || (j < i && h <= i && h > j) {
				break
			}
		}
		t.keys[i], t.vals[i], t.used[i] = t.keys[j], t.vals[j], true
		i = j
	}
}
