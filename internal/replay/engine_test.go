package replay

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/trace"
)

// geometries is the cross-section of configs the synthetic differential
// sweeps: every policy, every dead mode, bypass on/off, small and large
// associativity (the latter exercises the hash tag index), direct-mapped
// and fully-associative shapes, multi-word lines.
func testConfigs() []cache.Config {
	var out []cache.Config
	base := []cache.Config{
		{Sets: 32, Ways: 2, LineWords: 1},
		{Sets: 16, Ways: 4, LineWords: 1},
		{Sets: 64, Ways: 1, LineWords: 1},
		{Sets: 8, Ways: 2, LineWords: 4},
		{Sets: 1, Ways: 64, LineWords: 1}, // fully associative, hash index
		{Sets: 2, Ways: 16, LineWords: 2}, // hash index, sharded sets
	}
	for _, g := range base {
		for _, pol := range []cache.Policy{cache.LRU, cache.FIFO, cache.Random, cache.MIN} {
			for _, dead := range []cache.DeadMode{cache.DeadOff, cache.DeadInvalidate, cache.DeadDemote} {
				for _, hb := range []bool{false, true} {
					cfg := g
					cfg.Policy = pol
					cfg.Dead = dead
					cfg.HonorBypass = hb
					cfg.Seed = 7
					out = append(out, cfg)
				}
			}
		}
	}
	return out
}

func TestEngineMatchesSimulateTrace(t *testing.T) {
	traces := []trace.Trace{
		randomTrace(10, 5000),
		randomTrace(11, 20000),
		hotColdTrace(3000),
	}
	for ti, tr := range traces {
		enc := EncodeTrace(tr)
		for _, cfg := range testConfigs() {
			want, err := cache.SimulateTrace(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Measure(enc, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trace %d cfg %+v:\nMeasure  = %+v\nSimulate = %+v", ti, cfg, got, want)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				st, err := Replay(enc, cfg, workers)
				if err != nil {
					t.Fatal(err)
				}
				if st != want.Stats {
					t.Fatalf("trace %d cfg %+v workers %d:\nReplay   = %+v\nSimulate = %+v",
						ti, cfg, workers, st, want.Stats)
				}
			}
		}
	}
}

// hotColdTrace mixes a hot working set with cold single-use streaming
// references tagged Last — the access pattern dead marking exists for.
func hotColdTrace(n int) trace.Trace {
	var tr trace.Trace
	for i := 0; i < n; i++ {
		tr = append(tr, trace.Rec{Addr: int64(i % 16)})
		if i%3 == 0 {
			tr = append(tr, trace.Rec{Addr: int64(1000 + i), Kind: trace.Store, Last: true})
		}
		if i%5 == 0 {
			tr = append(tr, trace.Rec{Addr: int64(2000 + i%7), Bypass: true})
		}
	}
	return tr
}

func TestReplayEmptyTrace(t *testing.T) {
	enc := EncodeTrace(nil)
	cfg := cache.DefaultConfig()
	st, err := Replay(enc, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st != (cache.Stats{}) {
		t.Fatalf("empty trace produced stats %+v", st)
	}
	ms, err := Measure(enc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ms != (cache.TraceStats{}) {
		t.Fatalf("empty trace produced trace stats %+v", ms)
	}
}

func TestReplayRejectsBadConfig(t *testing.T) {
	enc := EncodeTrace(randomTrace(12, 10))
	if _, err := Replay(enc, cache.Config{Sets: 3, Ways: 1, LineWords: 1}, 1); err == nil {
		t.Fatal("non-power-of-two sets accepted")
	}
	if _, err := Measure(enc, cache.Config{Sets: 0, Ways: 1, LineWords: 1}); err == nil {
		t.Fatal("zero sets accepted")
	}
}

// TestReplayZeroAllocs is the satellite guard: the replay core must not
// allocate per reference — decode, lookup, victim selection, and stats
// all run on preallocated state. It covers both the scan path and the
// hash-index path.
func TestReplayZeroAllocs(t *testing.T) {
	tr := randomTrace(13, 20000)
	enc := EncodeTrace(tr)
	for _, cfg := range []cache.Config{
		{Sets: 32, Ways: 2, LineWords: 1, Policy: cache.LRU, Dead: cache.DeadInvalidate, HonorBypass: true, Seed: 1},
		{Sets: 1, Ways: 64, LineWords: 1, Policy: cache.LRU, Seed: 1}, // tagIndex path
		{Sets: 16, Ways: 4, LineWords: 1, Policy: cache.Random, Seed: 1},
	} {
		eng := newEngine(cfg, 0, cfg.Sets)
		allocs := testing.AllocsPerRun(3, func() {
			eng.run(enc)
		})
		if allocs != 0 {
			t.Fatalf("cfg %+v: %v allocs per replay of %d refs, want 0", cfg, allocs, enc.Len())
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	tr := randomTrace(20, 200_000)
	enc := EncodeTrace(tr)
	cfg := cache.DefaultConfig()
	b.Run("engine", func(b *testing.B) {
		b.SetBytes(int64(enc.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := Replay(enc, cfg, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("legacy", func(b *testing.B) {
		b.SetBytes(int64(len(tr)))
		for i := 0; i < b.N; i++ {
			if _, err := cache.SimulateTrace(tr, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
