package replay

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/trace"
)

// FuzzTraceCodec decodes the fuzz input as a reference stream (9 bytes
// per record: a flags byte, then a little-endian address), encodes it,
// and checks every read path against the original: Len, Records, the
// Cursor, and the text round trip through trace.Read. Addresses are
// masked to 62 bits — the VM's address space is non-negative, and the
// mask also keeps consecutive deltas inside int64.
func FuzzTraceCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x10, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{
		0x00, 0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00,
		0x07, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 9*4096 {
			data = data[:9*4096]
		}
		var tr trace.Trace
		for i := 0; i+8 < len(data); i += 9 {
			flags := data[i]
			r := trace.Rec{
				Addr:   int64(binary.LittleEndian.Uint64(data[i+1:])) & (1<<62 - 1),
				Bypass: flags&2 != 0,
				Last:   flags&4 != 0,
			}
			if flags&1 != 0 {
				r.Kind = trace.Store
			}
			tr = append(tr, r)
		}

		enc := EncodeTrace(tr)
		if enc.Len() != len(tr) {
			t.Fatalf("Len = %d, encoded %d records", enc.Len(), len(tr))
		}
		got := enc.Records()
		if len(got) != len(tr) {
			t.Fatalf("Records returned %d records, want %d", len(got), len(tr))
		}
		cur := enc.Cursor()
		for i, want := range tr {
			if got[i] != want {
				t.Fatalf("record %d: decoded %+v, want %+v", i, got[i], want)
			}
			cr, ok := cur.Next()
			if !ok || cr != want {
				t.Fatalf("cursor record %d: %+v ok=%v, want %+v", i, cr, ok, want)
			}
		}
		if _, ok := cur.Next(); ok {
			t.Fatal("cursor yields records past the end")
		}

		// Re-encoding the decoded stream is deterministic byte for byte.
		if re := EncodeTrace(got); re.Size() != enc.Size() {
			t.Fatalf("re-encode size %d, want %d", re.Size(), enc.Size())
		}

		// Text round trip: WriteText must emit exactly what trace.Read
		// accepts, reproducing the stream.
		var sb strings.Builder
		if err := enc.WriteText(&sb); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		back, err := trace.Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("Read(WriteText output): %v", err)
		}
		if len(back) != len(tr) {
			t.Fatalf("text round trip: %d records, want %d", len(back), len(tr))
		}
		for i, want := range tr {
			if back[i] != want {
				t.Fatalf("text round trip record %d: %+v, want %+v", i, back[i], want)
			}
		}
	})
}
