package replay

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cache"
)

// validate mirrors SimulateTrace's config acceptance: MIN is legal here
// (replay has future knowledge), everything else defers to the cache
// package's rules.
func validate(cfg cache.Config) error {
	probe := cfg
	if probe.Policy == cache.MIN {
		probe.Policy = cache.LRU
	}
	return probe.Validate()
}

// Replay replays an encoded trace against cfg and returns the traffic
// statistics, equal field for field to cache.SimulateTrace's Stats on
// the same trace.
//
// workers <= 0 means GOMAXPROCS. Parallel replay shards by cache set:
// under a fixed geometry each reference touches exactly one set and sets
// share no state, so each worker replays the full stream filtered to a
// contiguous set range with its own tick counter. Relative recency and
// insertion order within a set are preserved (ticks within a set rise in
// stream order regardless of how many out-of-shard references are
// skipped between them), every counter in Stats is a sum of per-set
// events, and integer addition is associative and commutative — so the
// merged result is bit-identical for any worker count. The Random policy
// is the one exception: it consumes a single PRNG stream in global miss
// order, which sharding would reorder, so it always runs on one worker.
// MIN shards fine — its future-knowledge array is read-only and shared.
func Replay(enc *Encoded, cfg cache.Config, workers int) (cache.Stats, error) {
	if err := validate(cfg); err != nil {
		return cache.Stats{}, err
	}
	var nextUse []int32
	if cfg.Policy == cache.MIN {
		nu, ok := enc.nextUses(int64(cfg.LineWords))
		if !ok {
			return cache.Stats{}, fmt.Errorf("replay: trace too long for MIN (%d refs)", enc.Len())
		}
		nextUse = nu
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Policy == cache.Random {
		workers = 1
	}
	if workers > cfg.Sets {
		workers = cfg.Sets
	}

	if workers == 1 {
		eng := newEngine(cfg, 0, cfg.Sets)
		if nextUse != nil {
			eng.nextUse = nextUse
			eng.nuse = make([]int32, cfg.Lines())
		}
		eng.run(enc)
		return eng.st, nil
	}

	shards := make([]cache.Stats, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		lo := k * cfg.Sets / workers
		hi := (k + 1) * cfg.Sets / workers
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			eng := newEngine(cfg, lo, hi)
			if nextUse != nil {
				eng.nextUse = nextUse
				eng.nuse = make([]int32, cfg.Lines())
			}
			eng.run(enc)
			shards[k] = eng.st
		}(k, lo, hi)
	}
	wg.Wait()

	var total cache.Stats
	for _, s := range shards {
		addStats(&total, s)
	}
	return total, nil
}

// addStats merges shard statistics by field-wise sum. Every Stats field
// counts per-set events, so the sum over disjoint set ranges equals the
// sequential count. (New Stats fields must be added here; the sharded
// differential tests catch omissions.)
func addStats(a *cache.Stats, b cache.Stats) {
	a.Refs += b.Refs
	a.CachedRefs += b.CachedRefs
	a.BypassRefs += b.BypassRefs
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.Fetches += b.Fetches
	a.Writebacks += b.Writebacks
	a.StoreAllocs += b.StoreAllocs
	a.BypassReads += b.BypassReads
	a.BypassWrites += b.BypassWrites
	a.DeadMarks += b.DeadMarks
	a.DeadDiscards += b.DeadDiscards
	a.SingleUseFills += b.SingleUseFills
	a.Evictions += b.Evictions
}

// Measure replays single-threaded and additionally computes the
// future-knowledge occupancy metrics (DeadOccupancy, AvgResidentLines),
// equal bit for bit to cache.SimulateTrace's — including the
// floating-point sums, which accumulate in the same sample order.
// Sampling is over global reference counts, so Measure never shards.
func Measure(enc *Encoded, cfg cache.Config) (cache.TraceStats, error) {
	if err := validate(cfg); err != nil {
		return cache.TraceStats{}, err
	}
	if enc.Len() >= int(never32) {
		// Final-reference indexes are stored as int32 (SimulateTrace's
		// equivalent arrays would need 16 bytes/ref — such traces are out
		// of reach for it too).
		return cache.TraceStats{}, fmt.Errorf("replay: trace too long to measure (%d refs)", enc.Len())
	}
	eng, err := newMeasureEngine(enc, cfg)
	if err != nil {
		return cache.TraceStats{}, err
	}
	eng.run(enc)
	return measureResult(eng), nil
}

// newMeasureEngine builds a single-threaded engine with the
// future-knowledge occupancy machinery wired up.
func newMeasureEngine(enc *Encoded, cfg cache.Config) (*engine, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	if enc.Len() >= int(never32) {
		// Final-reference indexes are stored as int32 (SimulateTrace's
		// equivalent arrays would need 16 bytes/ref — such traces are out
		// of reach for it too).
		return nil, fmt.Errorf("replay: trace too long to measure (%d refs)", enc.Len())
	}
	eng := newEngine(cfg, 0, cfg.Sets)
	eng.measure = true
	eng.deadRes = make([]bool, cfg.Lines())
	if cfg.Policy == cache.MIN {
		nu, ok := enc.nextUses(int64(cfg.LineWords))
		if !ok {
			return nil, fmt.Errorf("replay: trace too long for MIN (%d refs)", enc.Len())
		}
		eng.nextUse = nu
		eng.nuse = make([]int32, cfg.Lines())
	} else {
		eng.finalBit = enc.finalBits(int64(cfg.LineWords))
	}
	return eng, nil
}

func measureResult(eng *engine) cache.TraceStats {
	var st cache.TraceStats
	st.Stats = eng.st
	st.Samples = eng.samples
	if eng.samples > 0 {
		st.DeadOccupancy = eng.occSum / float64(eng.samples)
		st.AvgResidentLines = eng.resSum / float64(eng.samples)
	}
	return st
}

// MeasureBatch is Measure over several configurations of the same trace
// in a single decoding pass. The engines are fully independent — each
// keeps its own statistics, sampling accumulators, and PRNG — so every
// element of the result is bit-identical to calling Measure with the
// corresponding configuration alone; batching only avoids re-decoding
// the stream once per configuration, which dominates experiments like
// E2/E3 that sweep many cache shapes over one workload.
func MeasureBatch(enc *Encoded, cfgs []cache.Config) ([]cache.TraceStats, error) {
	engs := make([]*engine, len(cfgs))
	for i, cfg := range cfgs {
		eng, err := newMeasureEngine(enc, cfg)
		if err != nil {
			return nil, err
		}
		engs[i] = eng
	}
	runBatch(enc, engs)
	out := make([]cache.TraceStats, len(engs))
	for i, eng := range engs {
		out[i] = measureResult(eng)
	}
	return out, nil
}

// ReplayBatch is Replay over several configurations of the same trace in
// a single decoding pass on one goroutine (use Replay for set-sharded
// parallel replay of a single configuration). Each element of the result
// is bit-identical to Replay's for the corresponding configuration.
func ReplayBatch(enc *Encoded, cfgs []cache.Config) ([]cache.Stats, error) {
	engs := make([]*engine, len(cfgs))
	for i, cfg := range cfgs {
		if err := validate(cfg); err != nil {
			return nil, err
		}
		eng := newEngine(cfg, 0, cfg.Sets)
		if cfg.Policy == cache.MIN {
			nu, ok := enc.nextUses(int64(cfg.LineWords))
			if !ok {
				return nil, fmt.Errorf("replay: trace too long for MIN (%d refs)", enc.Len())
			}
			eng.nextUse = nu
			eng.nuse = make([]int32, cfg.Lines())
		}
		engs[i] = eng
	}
	runBatch(enc, engs)
	out := make([]cache.Stats, len(engs))
	for i, eng := range engs {
		out[i] = eng.st
	}
	return out, nil
}
