// Package sem implements name resolution and type checking for MC.
//
// The checker attaches no fields to the AST; resolved objects and expression
// types live in side tables on Info. It also records the facts the later
// alias analysis needs: which objects have their address taken and the
// program-wide object inventory.
package sem

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/token"
	"repro/internal/types"
)

// ObjKind classifies a declared object.
type ObjKind int

// Object kinds.
const (
	GlobalVar ObjKind = iota
	LocalVar
	ParamVar
	FuncObj
	BuiltinObj
)

func (k ObjKind) String() string {
	switch k {
	case GlobalVar:
		return "global"
	case LocalVar:
		return "local"
	case ParamVar:
		return "param"
	case FuncObj:
		return "func"
	case BuiltinObj:
		return "builtin"
	}
	return "?"
}

// Object is a declared entity: a variable, parameter, function, or builtin.
type Object struct {
	ID        int // unique across the program
	Name      string
	Kind      ObjKind
	Type      *types.Type
	Pos       token.Pos
	AddrTaken bool  // address escapes into a pointer (via &, decay, or array param passing)
	InitVal   int64 // constant initializer for global scalars

	// Func is set for FuncObj objects.
	Func *Func
}

func (o *Object) String() string { return fmt.Sprintf("%s %s %s", o.Kind, o.Type, o.Name) }

// IsVar reports whether the object is a variable or parameter.
func (o *Object) IsVar() bool {
	return o.Kind == GlobalVar || o.Kind == LocalVar || o.Kind == ParamVar
}

// Func is the semantic view of a function definition.
type Func struct {
	Obj    *Object
	Decl   *ast.FuncDecl
	Params []*Object
	Locals []*Object // declared locals, in declaration order (excludes params)
}

// Name returns the function's source name.
func (f *Func) Name() string { return f.Obj.Name }

// Info is the result of type checking a file.
type Info struct {
	File    *ast.File
	Funcs   []*Func
	Globals []*Object
	Objects []*Object // every object, indexed by ID

	Uses  map[*ast.Ident]*Object   // identifier resolution
	Decls map[*ast.VarDecl]*Object // declaration objects (globals and locals)
	Types map[ast.Expr]*types.Type // expression types (pre-decay)
}

// ObjectOf returns the object an identifier resolves to, or nil.
func (in *Info) ObjectOf(id *ast.Ident) *Object { return in.Uses[id] }

// TypeOf returns the checked type of an expression, or nil.
func (in *Info) TypeOf(e ast.Expr) *types.Type { return in.Types[e] }

// LookupFunc finds a function by name.
func (in *Info) LookupFunc(name string) *Func {
	for _, f := range in.Funcs {
		if f.Name() == name {
			return f
		}
	}
	return nil
}

// Error is a semantic diagnostic.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList collects semantic errors.
type ErrorList []Error

func (l ErrorList) Error() string {
	var b strings.Builder
	for i, e := range l {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// BuiltinNames lists the predeclared functions: print emits an integer and a
// newline; printchar emits a single character code.
var BuiltinNames = []string{"print", "printchar"}

// Check resolves and type-checks the file.
func Check(f *ast.File) (*Info, error) {
	c := &checker{
		info: &Info{
			File:  f,
			Uses:  make(map[*ast.Ident]*Object),
			Decls: make(map[*ast.VarDecl]*Object),
			Types: make(map[ast.Expr]*types.Type),
		},
		scopes: []map[string]*Object{make(map[string]*Object)},
	}
	for _, name := range BuiltinNames {
		obj := c.newObject(name, BuiltinObj, types.NewFunc([]*types.Type{types.Int}, types.Void), token.Pos{})
		c.scopes[0][name] = obj
	}

	// Pass 1: declare all globals and function signatures so forward calls work.
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.VarDecl:
			c.declareGlobal(d)
		case *ast.FuncDecl:
			c.declareFunc(d)
		}
	}
	// Pass 2: check function bodies.
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			c.checkFuncBody(fd)
		}
	}
	if len(c.errs) > 0 {
		return c.info, c.errs
	}
	return c.info, nil
}

type checker struct {
	info   *Info
	scopes []map[string]*Object
	errs   ErrorList

	curFunc   *Func
	loopDepth int
}

const maxErrors = 20

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	if len(c.errs) < maxErrors {
		c.errs = append(c.errs, Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (c *checker) newObject(name string, kind ObjKind, t *types.Type, pos token.Pos) *Object {
	obj := &Object{ID: len(c.info.Objects), Name: name, Kind: kind, Type: t, Pos: pos}
	c.info.Objects = append(c.info.Objects, obj)
	return obj
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*Object)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(obj *Object) {
	top := c.scopes[len(c.scopes)-1]
	if prev, ok := top[obj.Name]; ok {
		c.errorf(obj.Pos, "%s redeclared (previous declaration at %s)", obj.Name, prev.Pos)
		return
	}
	top[obj.Name] = obj
}

func (c *checker) lookup(name string) *Object {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if obj, ok := c.scopes[i][name]; ok {
			return obj
		}
	}
	return nil
}

func (c *checker) declareGlobal(d *ast.VarDecl) {
	obj := c.newObject(d.Name, GlobalVar, d.Type, d.NamePos)
	c.declare(obj)
	c.info.Decls[d] = obj
	c.info.Globals = append(c.info.Globals, obj)
	if d.Init != nil {
		if !d.Type.IsInt() {
			c.errorf(d.NamePos, "only int globals may have initializers")
			return
		}
		v, ok := constEval(d.Init)
		if !ok {
			c.errorf(d.Init.Pos(), "global initializer must be a constant expression")
			return
		}
		obj.InitVal = v
	}
}

// constEval evaluates constant integer expressions for global initializers.
func constEval(e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, true
	case *ast.Unary:
		v, ok := constEval(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case token.MINUS:
			return -v, true
		case token.NOT:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *ast.Binary:
		a, ok1 := constEval(e.X)
		b, ok2 := constEval(e.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch e.Op {
		case token.PLUS:
			return a + b, true
		case token.MINUS:
			return a - b, true
		case token.STAR:
			return a * b, true
		case token.SLASH:
			if b == 0 {
				return 0, false
			}
			if b == -1 {
				// Machine wrap semantics: MinInt64 / -1 = MinInt64.
				return -a, true
			}
			return a / b, true
		case token.PERCENT:
			if b == 0 {
				return 0, false
			}
			if b == -1 {
				return 0, true
			}
			return a % b, true
		case token.SHL:
			if b < 0 || b > 62 {
				return 0, false
			}
			return a << uint(b), true
		case token.SHR:
			if b < 0 || b > 62 {
				return 0, false
			}
			return a >> uint(b), true
		case token.AMP:
			return a & b, true
		case token.PIPE:
			return a | b, true
		case token.CARET:
			return a ^ b, true
		}
	}
	return 0, false
}

func (c *checker) declareFunc(d *ast.FuncDecl) {
	var params []*types.Type
	for _, prm := range d.Params {
		params = append(params, prm.Type)
	}
	ft := types.NewFunc(params, d.Result)
	obj := c.newObject(d.Name, FuncObj, ft, d.NamePos)
	fn := &Func{Obj: obj, Decl: d}
	obj.Func = fn
	c.declare(obj)
	c.info.Funcs = append(c.info.Funcs, fn)
}

func (c *checker) checkFuncBody(d *ast.FuncDecl) {
	obj := c.lookup(d.Name)
	if obj == nil || obj.Func == nil || obj.Func.Decl != d {
		return // redeclaration error already reported
	}
	fn := obj.Func
	c.curFunc = fn
	c.push()
	for _, prm := range d.Params {
		p := c.newObject(prm.Name, ParamVar, prm.Type, prm.NamePos)
		c.declare(p)
		fn.Params = append(fn.Params, p)
	}
	c.checkBlock(d.Body, false)
	c.pop()
	c.curFunc = nil
}

// checkBlock checks a block; ownScope is false when the caller already
// pushed a scope (function bodies share the parameter scope).
func (c *checker) checkBlock(b *ast.BlockStmt, ownScope bool) {
	if ownScope {
		c.push()
		defer c.pop()
	}
	for _, s := range b.List {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.DeclStmt:
		c.checkLocalDecl(s.Decl)
	case *ast.AssignStmt:
		c.checkAssign(s)
	case *ast.IncDecStmt:
		t := c.checkLvalue(s.LHS)
		if t != nil && !t.IsInt() && !t.IsPointer() {
			c.errorf(s.LHS.Pos(), "%s requires an int or pointer operand, have %s", s.Op, t)
		}
	case *ast.ExprStmt:
		c.checkExpr(s.X)
	case *ast.BlockStmt:
		c.checkBlock(s, true)
	case *ast.IfStmt:
		c.checkCond(s.Cond)
		c.checkStmt(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *ast.WhileStmt:
		c.checkCond(s.Cond)
		c.loopDepth++
		c.checkStmt(s.Body)
		c.loopDepth--
	case *ast.ForStmt:
		c.push()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			c.checkCond(s.Cond)
		}
		c.loopDepth++
		c.checkStmt(s.Body)
		if s.Post != nil {
			c.checkStmt(s.Post)
		}
		c.loopDepth--
		c.pop()
	case *ast.ReturnStmt:
		c.checkReturn(s)
	case *ast.BreakStmt:
		if c.loopDepth == 0 {
			c.errorf(s.Pos(), "break outside loop")
		}
	case *ast.ContinueStmt:
		if c.loopDepth == 0 {
			c.errorf(s.Pos(), "continue outside loop")
		}
	}
}

func (c *checker) checkLocalDecl(d *ast.VarDecl) {
	obj := c.newObject(d.Name, LocalVar, d.Type, d.NamePos)
	c.declare(obj)
	c.info.Decls[d] = obj
	if c.curFunc != nil {
		c.curFunc.Locals = append(c.curFunc.Locals, obj)
	}
	if d.Init != nil {
		if !d.Type.IsScalar() {
			c.errorf(d.NamePos, "array %s cannot have an initializer", d.Name)
			return
		}
		t := c.checkExpr(d.Init)
		c.assignable(d.NamePos, d.Type, t)
	}
}

func (c *checker) checkAssign(s *ast.AssignStmt) {
	lt := c.checkLvalue(s.LHS)
	rt := c.checkExpr(s.RHS)
	if lt == nil || rt == nil {
		return
	}
	if s.Op == token.ASSIGN {
		c.assignable(s.LHS.Pos(), lt, rt)
		return
	}
	// Compound assignment: int op= int, or pointer += / -= int.
	if lt.IsPointer() && (s.Op == token.PLUSEQ || s.Op == token.MINUSEQ) {
		if !rt.IsInt() {
			c.errorf(s.RHS.Pos(), "pointer %s requires an int operand, have %s", s.Op, rt)
		}
		return
	}
	if !lt.IsInt() || !rt.Decay().IsInt() {
		c.errorf(s.LHS.Pos(), "invalid operands for %s: %s and %s", s.Op, lt, rt)
	}
}

// assignable reports an error unless a value of type rt may be assigned to
// storage of type lt (with array decay on the right).
func (c *checker) assignable(pos token.Pos, lt, rt *types.Type) {
	rt = rt.Decay()
	if types.Equal(lt, rt) {
		return
	}
	c.errorf(pos, "cannot assign %s to %s", rt, lt)
}

func (c *checker) checkCond(e ast.Expr) {
	t := c.checkExpr(e)
	if t != nil && !t.Decay().IsScalar() {
		c.errorf(e.Pos(), "condition must be scalar, have %s", t)
	}
}

func (c *checker) checkReturn(s *ast.ReturnStmt) {
	if c.curFunc == nil {
		return
	}
	want := c.curFunc.Obj.Type.Result
	if s.Result == nil {
		if !want.IsVoid() {
			c.errorf(s.Pos(), "missing return value in %s (want %s)", c.curFunc.Name(), want)
		}
		return
	}
	if want.IsVoid() {
		c.errorf(s.Pos(), "void function %s returns a value", c.curFunc.Name())
		return
	}
	t := c.checkExpr(s.Result)
	if t != nil {
		c.assignable(s.Result.Pos(), want, t)
	}
}

// checkLvalue checks e as an assignment target and returns its type.
func (c *checker) checkLvalue(e ast.Expr) *types.Type {
	t := c.checkExpr(e)
	if t == nil {
		return nil
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := c.info.Uses[e]
		if obj != nil && !obj.IsVar() {
			c.errorf(e.Pos(), "%s is not a variable", e.Name)
			return nil
		}
		if t.IsArray() {
			c.errorf(e.Pos(), "cannot assign to array %s", e.Name)
			return nil
		}
		return t
	case *ast.Index:
		if t.IsArray() {
			c.errorf(e.Pos(), "cannot assign to array element of array type")
			return nil
		}
		return t
	case *ast.Unary:
		if e.Op == token.STAR {
			return t
		}
	}
	c.errorf(e.Pos(), "invalid assignment target")
	return nil
}

// checkExpr type-checks e and records its (pre-decay) type.
func (c *checker) checkExpr(e ast.Expr) *types.Type {
	t := c.exprType(e)
	if t != nil {
		c.info.Types[e] = t
	}
	return t
}

func (c *checker) exprType(e ast.Expr) *types.Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return types.Int

	case *ast.Ident:
		obj := c.lookup(e.Name)
		if obj == nil {
			c.errorf(e.Pos(), "undefined: %s", e.Name)
			return nil
		}
		c.info.Uses[e] = obj
		if obj.Kind == FuncObj || obj.Kind == BuiltinObj {
			c.errorf(e.Pos(), "%s is a function, not a value", e.Name)
			return nil
		}
		return obj.Type

	case *ast.Unary:
		xt := c.checkExpr(e.X)
		if xt == nil {
			return nil
		}
		switch e.Op {
		case token.MINUS, token.NOT:
			if !xt.Decay().IsInt() {
				c.errorf(e.Pos(), "operator %s requires int, have %s", e.Op, xt)
				return nil
			}
			return types.Int
		case token.STAR:
			dt := xt.Decay()
			if !dt.IsPointer() {
				c.errorf(e.Pos(), "cannot dereference %s", xt)
				return nil
			}
			return dt.Elem
		case token.AMP:
			return c.addressOf(e.X, xt)
		}
		c.errorf(e.Pos(), "invalid unary operator %s", e.Op)
		return nil

	case *ast.Binary:
		return c.binaryType(e)

	case *ast.Index:
		xt := c.checkExpr(e.X)
		it := c.checkExpr(e.Idx)
		if it != nil && !it.IsInt() {
			c.errorf(e.Idx.Pos(), "array index must be int, have %s", it)
		}
		if xt == nil {
			return nil
		}
		switch {
		case xt.IsArray():
			return xt.Elem
		case xt.IsPointer():
			// Indexing through a pointer marks nothing here; aliasing is
			// resolved by the points-to analysis.
			return xt.Elem
		}
		c.errorf(e.Pos(), "cannot index %s", xt)
		return nil

	case *ast.Call:
		return c.callType(e)
	}
	return nil
}

// addressOf types &x and records address-taken facts.
func (c *checker) addressOf(x ast.Expr, xt *types.Type) *types.Type {
	switch x := x.(type) {
	case *ast.Ident:
		if obj := c.info.Uses[x]; obj != nil && obj.IsVar() {
			obj.AddrTaken = true
		}
		return types.PointerTo(xt)
	case *ast.Index:
		return types.PointerTo(xt)
	case *ast.Unary:
		if x.Op == token.STAR {
			return types.PointerTo(xt) // &*p == p
		}
	}
	c.errorf(x.Pos(), "cannot take address of this expression")
	return nil
}

func (c *checker) binaryType(e *ast.Binary) *types.Type {
	xt := c.checkExpr(e.X)
	yt := c.checkExpr(e.Y)
	if xt == nil || yt == nil {
		return nil
	}
	xd, yd := xt.Decay(), yt.Decay()
	switch e.Op {
	case token.PLUS, token.MINUS:
		switch {
		case xd.IsInt() && yd.IsInt():
			return types.Int
		case xd.IsPointer() && yd.IsInt():
			return xd
		case e.Op == token.PLUS && xd.IsInt() && yd.IsPointer():
			return yd
		case e.Op == token.MINUS && xd.IsPointer() && types.Equal(xd, yd):
			return types.Int // pointer difference in elements
		}
	case token.STAR, token.SLASH, token.PERCENT, token.SHL, token.SHR,
		token.AMP, token.PIPE, token.CARET:
		if xd.IsInt() && yd.IsInt() {
			return types.Int
		}
	case token.EQ, token.NEQ, token.LT, token.GT, token.LEQ, token.GEQ:
		if (xd.IsInt() && yd.IsInt()) || (xd.IsPointer() && types.Equal(xd, yd)) {
			return types.Int
		}
	case token.LAND, token.LOR:
		if xd.IsScalar() && yd.IsScalar() {
			return types.Int
		}
	}
	c.errorf(e.OpPos, "invalid operands for %s: %s and %s", e.Op, xt, yt)
	return nil
}

func (c *checker) callType(e *ast.Call) *types.Type {
	obj := c.lookup(e.Fun.Name)
	if obj == nil {
		c.errorf(e.Fun.Pos(), "undefined function: %s", e.Fun.Name)
		// Still check the arguments for secondary errors.
		for _, a := range e.Args {
			c.checkExpr(a)
		}
		return nil
	}
	c.info.Uses[e.Fun] = obj
	if obj.Kind != FuncObj && obj.Kind != BuiltinObj {
		c.errorf(e.Fun.Pos(), "%s is not a function", e.Fun.Name)
		return nil
	}
	ft := obj.Type
	if len(e.Args) != len(ft.Params) {
		c.errorf(e.Fun.Pos(), "%s expects %d arguments, got %d", e.Fun.Name, len(ft.Params), len(e.Args))
	}
	for i, a := range e.Args {
		at := c.checkExpr(a)
		if i < len(ft.Params) && at != nil {
			// Passing an array decays it to a pointer: its address escapes.
			if at.IsArray() {
				if id, ok := a.(*ast.Ident); ok {
					if o := c.info.Uses[id]; o != nil {
						o.AddrTaken = true
					}
				}
			}
			c.assignable(a.Pos(), ft.Params[i], at)
		}
	}
	return ft.Result
}
