package sem

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(f)
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func wantErr(t *testing.T, src, frag string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not contain %q", err, frag)
	}
}

func TestGlobalsAndFuncs(t *testing.T) {
	info := mustCheck(t, `
int g = 7;
int a[10];
int add(int x, int y) { return x + y; }
void main() { print(add(g, a[0])); }
`)
	if len(info.Globals) != 2 {
		t.Fatalf("globals = %d, want 2", len(info.Globals))
	}
	if info.Globals[0].InitVal != 7 {
		t.Errorf("g init = %d, want 7", info.Globals[0].InitVal)
	}
	if len(info.Funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(info.Funcs))
	}
	if f := info.LookupFunc("add"); f == nil || len(f.Params) != 2 {
		t.Fatalf("add lookup failed: %v", f)
	}
}

func TestConstInitializers(t *testing.T) {
	info := mustCheck(t, `
int a = 2 + 3 * 4;
int b = -(1 << 4);
int c = 100 / 7 % 5;
void main() {}
`)
	wants := []int64{14, -16, 4}
	for i, w := range wants {
		if got := info.Globals[i].InitVal; got != w {
			t.Errorf("global %d init = %d, want %d", i, got, w)
		}
	}
}

func TestNonConstGlobalInit(t *testing.T) {
	wantErr(t, `int g; int h = g + 1; void main() {}`, "constant")
}

func TestUndefined(t *testing.T) {
	wantErr(t, `void main() { x = 1; }`, "undefined")
	wantErr(t, `void main() { foo(); }`, "undefined function")
}

func TestRedeclaration(t *testing.T) {
	wantErr(t, `int x; int x; void main() {}`, "redeclared")
	wantErr(t, `void main() { int y; int y; }`, "redeclared")
}

func TestShadowingAllowed(t *testing.T) {
	info := mustCheck(t, `
int x;
void main() {
    int x;
    x = 1;
    {
        int x;
        x = 2;
    }
}
`)
	fn := info.LookupFunc("main")
	if len(fn.Locals) != 2 {
		t.Fatalf("locals = %d, want 2", len(fn.Locals))
	}
	if fn.Locals[0].ID == fn.Locals[1].ID {
		t.Error("shadowed locals share an ID")
	}
}

func TestTypeErrors(t *testing.T) {
	wantErr(t, `int a[5]; void main() { a = 1; }`, "cannot assign")
	wantErr(t, `void main() { int x; int *p; x = p; }`, "cannot assign")
	wantErr(t, `void main() { int x; x = *x; }`, "dereference")
	wantErr(t, `int f() { return 1; } void main() { f = 2; }`, "not a value")
	wantErr(t, `void main() { int a[3]; a[0][1] = 2; }`, "cannot index")
	wantErr(t, `int f(int x) { return x; } void main() { f(1, 2); }`, "expects 1 arguments")
	wantErr(t, `void main() { return 3; }`, "void function")
	wantErr(t, `int f() { return; } void main() {}`, "missing return value")
	wantErr(t, `void main() { break; }`, "break outside loop")
	wantErr(t, `void main() { continue; }`, "continue outside loop")
}

func TestPointerArithmeticTypes(t *testing.T) {
	info := mustCheck(t, `
int a[10];
void main() {
    int *p;
    int d;
    p = a;
    p = p + 3;
    p = 1 + p;
    p += 2;
    d = p - a;
    if (p == a) { d = 0; }
    if (p < a) { d = 1; }
}
`)
	_ = info
}

func TestAddrTaken(t *testing.T) {
	info := mustCheck(t, `
int g;
int h;
int a[4];
void use(int *p) { *p = 1; }
void main() {
    int x;
    int y;
    int *p;
    p = &x;
    use(&g);
    use(a);
    y = x + h;
}
`)
	byName := map[string]*Object{}
	for _, o := range info.Objects {
		if o.IsVar() {
			byName[o.Name] = o
		}
	}
	if !byName["g"].AddrTaken {
		t.Error("g should be address-taken")
	}
	if byName["h"].AddrTaken {
		t.Error("h should not be address-taken")
	}
	if !byName["a"].AddrTaken {
		t.Error("a passed to pointer param should be address-taken")
	}
	if !byName["x"].AddrTaken {
		t.Error("x should be address-taken")
	}
	if byName["y"].AddrTaken {
		t.Error("y should not be address-taken")
	}
}

func TestUsesResolution(t *testing.T) {
	info := mustCheck(t, `
int g;
void main() {
    int l;
    l = g;
    g = l;
}
`)
	// Every identifier use must resolve.
	count := 0
	for id, obj := range info.Uses {
		if obj == nil {
			t.Errorf("nil object for %s", id.Name)
		}
		count++
	}
	if count < 4 {
		t.Errorf("uses = %d, want >= 4", count)
	}
}

func TestTwoDimensionalArrays(t *testing.T) {
	mustCheck(t, `
int m[4][5];
void main() {
    int i;
    int j;
    for (i = 0; i < 4; i++)
        for (j = 0; j < 5; j++)
            m[i][j] = i * j;
    print(m[3][4]);
}
`)
}

func TestBuiltinsAreDeclared(t *testing.T) {
	mustCheck(t, `void main() { print(1); printchar(65); }`)
	wantErr(t, `void main() { print(1, 2); }`, "expects 1 arguments")
}

func TestForScopeIsolation(t *testing.T) {
	// i declared in a for header must not leak past the loop.
	wantErr(t, `
void main() {
    for (int i = 0; i < 3; i++) print(i);
    print(i);
}
`, "undefined")
}

func TestExprTypesRecorded(t *testing.T) {
	info := mustCheck(t, `
int a[6];
void main() {
    int *p;
    p = &a[2];
}
`)
	found := false
	for e, ty := range info.Types {
		if _, ok := e.(*ast.Unary); ok && ty.IsPointer() {
			found = true
		}
	}
	if !found {
		t.Error("no pointer-typed unary expression recorded")
	}
}

func TestRecursionAllowed(t *testing.T) {
	mustCheck(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
void main() { print(fib(10)); }
`)
}

func TestMutualRecursionForwardRef(t *testing.T) {
	mustCheck(t, `
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
void main() { print(even(10)); }
`)
}
