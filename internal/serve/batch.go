// Batched admission.
//
// The batcher sits between the HTTP handlers and the worker queue.
// Instead of entering the queue immediately, a batchable request parks in
// a short collection window (Config.BatchMaxWait, default 2ms) keyed by
// its full semantic identity (Request.batchKey). The window flushes when
// the max-wait timer fires or when BatchMaxSize requests have
// accumulated, whichever is first. At flush time:
//
//   - requests with identical keys have already coalesced into one set:
//     one queue slot, one execution, one response fanned out to every
//     waiter (followers marked Deduped);
//   - distinct simulate-only sets that compile the same program and share
//     an execution identity (Request.groupKey) merge into one group task:
//     the worker compiles once and serves every geometry through
//     artifact.RunBatch — the VM runs at most once, the rest replay the
//     encoded trace, bit-identically;
//   - everything else enters the queue as an ordinary singleton task.
//
// The cost is bounded, deliberate latency: an isolated request pays up to
// BatchMaxWait (worst case ~2× when a size-flush re-arms the window)
// before queueing. A storm of near-identical traffic pays one compile and
// about one simulation for the whole storm — the same liveness bet as the
// paper's cache: predicted-dead traffic (one-shot, all different) loses a
// couple of milliseconds; predicted-live traffic (hot source, many
// geometries) wins orders of magnitude.
//
// Lifecycle: one timer goroutine, joined on close. Closing sheds every
// parked member with 503 draining. Submissions after close shed
// immediately, so no waiter can be stranded.
package serve

import (
	"context"
	"net/http"
	"sync"
	"time"
)

type batcher struct {
	s       *Server
	maxWait time.Duration
	maxSize int

	mu      sync.Mutex
	closed  bool
	pend    map[string]*reqSet // batchKey -> coalesced set
	order   []string           // first-seen key order (detmap: map never ranged)
	members int                // total waiters parked, across sets

	kick  chan struct{} // armed when a batch window opens (cap 1)
	stopc chan struct{}
	wg    sync.WaitGroup
}

func newBatcher(s *Server, maxWait time.Duration, maxSize int) *batcher {
	b := &batcher{
		s:       s,
		maxWait: maxWait,
		maxSize: maxSize,
		pend:    make(map[string]*reqSet),
		kick:    make(chan struct{}, 1),
		stopc:   make(chan struct{}),
	}
	b.wg.Add(1)
	go b.loop()
	return b
}

// loop is the window timer: each kick (a batch window opening) arms one
// maxWait sleep, after which everything pending is flushed. A size-flush
// may empty the window first — the timer then flushes nothing. A window
// opening while the timer is already armed rides the armed sleep or, if
// it raced a size-flush, the buffered kick; either bounds its wait by
// ~2× maxWait. The timer never holds b.mu while sleeping.
func (b *batcher) loop() {
	defer b.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		select {
		case <-b.stopc:
			return
		case <-b.kick:
			timer.Reset(b.maxWait)
			select {
			case <-b.stopc:
				return
			case <-timer.C:
				b.mu.Lock()
				if !b.closed {
					b.flushLocked()
				}
				b.mu.Unlock()
			}
		}
	}
}

// submit parks one request in the current window, coalescing it into an
// existing set when the key matches. reply receives exactly one response
// eventually (flush, overload, or drain shed).
func (b *batcher) submit(key string, req *Request, ctx context.Context, enq time.Time, reply chan *Response) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.s.rejectSet(&reqSet{waiters: []chan *Response{reply}},
			(&Response{}).fail(http.StatusServiceUnavailable, KindDraining, "",
				"server is draining"))
		return
	}
	set := b.pend[key]
	if set == nil {
		set = &reqSet{req: req, enq: enq}
		b.pend[key] = set
		b.order = append(b.order, key)
		if len(b.order) == 1 {
			// A window just opened; arm the timer. Non-blocking: a
			// buffered kick already guarantees a flush is coming.
			select {
			case b.kick <- struct{}{}:
			default:
			}
		}
	} else {
		b.s.met.noteCoalesced()
	}
	set.ctxs = append(set.ctxs, ctx)
	set.waiters = append(set.waiters, reply)
	b.members++
	if b.members >= b.maxSize {
		b.flushLocked()
	}
	b.mu.Unlock()
}

// flushLocked moves the whole window into the worker queue: artifact
// groups become group tasks, the rest singletons, in first-seen order
// (groups first). Caller holds b.mu.
func (b *batcher) flushLocked() {
	if len(b.order) == 0 {
		return
	}
	pend, order := b.pend, b.order
	b.pend = make(map[string]*reqSet)
	b.order = nil
	b.members = 0
	b.s.met.noteFlush()

	type group struct{ sets []*reqSet }
	groups := make(map[string]*group)
	var gorder []string
	var singles []*reqSet
	for _, k := range order {
		set := pend[k]
		gk, ok := set.req.groupKey()
		if !ok {
			singles = append(singles, set)
			continue
		}
		g := groups[gk]
		if g == nil {
			g = &group{}
			groups[gk] = g
			gorder = append(gorder, gk)
		}
		g.sets = append(g.sets, set)
	}
	for _, gk := range gorder {
		g := groups[gk]
		if len(g.sets) == 1 {
			singles = append(singles, g.sets[0])
			continue
		}
		b.enqueue(b.newTask(g.sets))
	}
	for _, set := range singles {
		b.enqueue(b.newTask([]*reqSet{set}))
	}
}

// newTask wraps sets into a queue task. Work owned by a single client
// runs under that client's context; shared work runs under a context
// detached from every client (one disconnect must not cancel the others'
// answer) carrying the latest member deadline.
func (b *batcher) newTask(sets []*reqSet) *task {
	t := &task{sets: sets, enq: sets[0].enq}
	if len(sets) == 1 && len(sets[0].ctxs) == 1 {
		t.ctx = sets[0].ctxs[0]
		return t
	}
	var dl time.Time
	for _, set := range sets {
		for _, c := range set.ctxs {
			if d, ok := c.Deadline(); ok && d.After(dl) {
				dl = d
			}
		}
	}
	if dl.IsZero() {
		t.ctx, t.cancel = context.WithTimeout(context.Background(), b.s.cfg.DefaultDeadline)
	} else {
		t.ctx, t.cancel = context.WithDeadline(context.Background(), dl)
	}
	return t
}

// enqueue admits a task non-blockingly; a full queue sheds every member
// with 429, same contract as the direct path.
func (b *batcher) enqueue(t *task) {
	select {
	case b.s.queue <- t:
	default:
		if t.cancel != nil {
			t.cancel()
		}
		for _, set := range t.sets {
			b.s.rejectSet(set, (&Response{}).fail(http.StatusTooManyRequests, KindOverload, "",
				"admission queue full"))
		}
	}
}

// close stops the timer goroutine (joined) and sheds every parked member
// with 503 draining. Called once, from Shutdown, after draining flips.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	pend, order := b.pend, b.order
	b.pend, b.order, b.members = nil, nil, 0
	b.mu.Unlock()

	close(b.stopc)
	b.wg.Wait()

	for _, k := range order {
		b.s.rejectSet(pend[k], (&Response{}).fail(http.StatusServiceUnavailable, KindDraining, "",
			"server is draining"))
	}
}
