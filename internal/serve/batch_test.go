package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// awaitGoroutines waits for the goroutine count to drop back to at most
// base, tolerating the runtime's own background settle time.
func awaitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second) //unilint:ok wallclock test-only settle deadline
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) { //unilint:ok wallclock test-only settle deadline
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d alive, want <= %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchStormExactlyOneCompile is the batching-layer stress test: 32
// concurrent clients hammer the daemon with overlapping requests drawn
// from a small pool of distinct programs. The contract under storm:
// every distinct program compiles exactly once, every response completes
// with a correct answer or a structured status, and the server winds
// down without leaking a goroutine.
func TestBatchStormExactlyOneCompile(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	s, err := New(Config{
		Workers: 4, QueueDepth: 256,
		BatchMaxWait: 3 * time.Millisecond, BatchMaxSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	// A pool of distinct programs, each with a known answer: sum of
	// i*2 for i<n plus nothing else, printed.
	type prog struct{ src, want string }
	pool := make([]prog, 6)
	for p := range pool {
		n := 8 + 2*p
		sum := 0
		for i := 0; i < n; i++ {
			sum += i * 2
		}
		pool[p] = prog{
			src: fmt.Sprintf(`
int a[%d];
void main() {
    int i;
    int s;
    s = 0;
    for (i = 0; i < %d; i++) {
        a[i] = i * 2;
    }
    for (i = 0; i < %d; i++) {
        s = s + a[i];
    }
    print(s);
}`, n, n, n),
			want: fmt.Sprintf("%d\n", sum),
		}
	}

	const clients = 32
	const perClient = 12
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				p := pool[(c+i)%len(pool)]
				// Vary the geometry so identical-source requests split
				// across coalesced sets AND grouped batch replays.
				req := &Request{
					Source: p.src,
					Want:   []string{TierCompile, TierSimulate},
					Cache:  CacheSpec{Sets: 8 << (i % 3)},
				}
				status, resp := post(t, ts.URL, "/v1/eval", req)
				if resp.ErrorKind != "" {
					// Under storm a structured shed is acceptable; silence
					// or a transport error is not (post fails the test).
					switch resp.ErrorKind {
					case KindOverload, KindShed, KindDraining, KindTimeout:
						continue
					default:
						errs <- fmt.Errorf("client %d: unexpected error %s (%s): %s", c, resp.ErrorKind, resp.Phase, resp.Error)
						continue
					}
				}
				if status != 200 || resp.Simulate == nil {
					errs <- fmt.Errorf("client %d: status %d, simulate %v", c, status, resp.Simulate)
					continue
				}
				if resp.Simulate.Output != p.want {
					errs <- fmt.Errorf("client %d: output %q, want %q", c, resp.Simulate.Output, p.want)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Exactly one compile per distinct program, however the storm raced.
	st := s.CacheStats()
	if st.BuildMisses != int64(len(pool)) {
		t.Errorf("BuildMisses = %d, want exactly %d (one compile per distinct program)", st.BuildMisses, len(pool))
	}
	snap := s.Snapshot()
	if snap.Coalesced == 0 {
		t.Error("no requests coalesced — the batching layer never merged identical traffic")
	}
	if snap.BatchFlushes == 0 {
		t.Error("no batch flushes recorded")
	}

	ts.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	awaitGoroutines(t, baseGoroutines)
}

// TestBatchGroupSharesExecution proves the replay path: concurrent
// simulate requests for one program across several cache geometries are
// served by a single batched execution — the VM runs once and the other
// geometries replay the encoded trace (visible as BatchReplays), with
// every response still carrying its own geometry's statistics.
func TestBatchGroupSharesExecution(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 2, QueueDepth: 64,
		// A wide window so one flush captures the whole group.
		BatchMaxWait: 40 * time.Millisecond, BatchMaxSize: 64,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sets := []int{8, 16, 32, 64}
	type out struct {
		sets int
		resp *Response
	}
	results := make(chan out, len(sets))
	var wg sync.WaitGroup
	for _, n := range sets {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			_, resp := post(t, ts.URL, "/v1/simulate", &Request{
				Source: quickSource,
				Want:   []string{TierSimulate},
				Cache:  CacheSpec{Sets: n},
			})
			results <- out{n, resp}
		}(n)
	}
	wg.Wait()
	close(results)

	hits := make(map[int]int64)
	for r := range results {
		if r.resp.ErrorKind != "" {
			t.Fatalf("sets=%d: %s: %s", r.sets, r.resp.ErrorKind, r.resp.Error)
		}
		if r.resp.Simulate.Output != "240\n" {
			t.Fatalf("sets=%d: output %q", r.sets, r.resp.Simulate.Output)
		}
		hits[r.sets] = r.resp.Simulate.Cache.Hits
	}
	if len(hits) != len(sets) {
		t.Fatalf("got %d distinct responses, want %d", len(hits), len(sets))
	}

	st := s.CacheStats()
	if st.BuildMisses != 1 {
		t.Errorf("BuildMisses = %d, want 1", st.BuildMisses)
	}
	if st.BatchReplays == 0 {
		t.Error("BatchReplays = 0 — the group executed every geometry directly instead of replaying")
	}
	if snap := s.Snapshot(); snap.GroupedSets < int64(len(sets)) {
		t.Errorf("GroupedSets = %d, want >= %d", snap.GroupedSets, len(sets))
	}
}

// TestBatchIdenticalCoalesce: identical concurrent requests collapse to
// one execution; every client gets the full answer and the followers are
// marked deduped.
func TestBatchIdenticalCoalesce(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 2, QueueDepth: 64,
		BatchMaxWait: 40 * time.Millisecond, BatchMaxSize: 64,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	resps := make(chan *Response, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, resp := post(t, ts.URL, "/v1/eval", &Request{Source: quickSource})
			resps <- resp
		}()
	}
	wg.Wait()
	close(resps)

	deduped := 0
	for resp := range resps {
		if resp.ErrorKind != "" {
			t.Fatalf("%s: %s", resp.ErrorKind, resp.Error)
		}
		if resp.Simulate == nil || resp.Simulate.Output != "240\n" {
			t.Fatalf("bad simulate result: %+v", resp.Simulate)
		}
		if resp.Deduped {
			deduped++
		}
	}
	if deduped < n-1 {
		t.Errorf("%d of %d responses deduped, want >= %d", deduped, n, n-1)
	}
	st := s.CacheStats()
	if st.BuildMisses != 1 {
		t.Errorf("BuildMisses = %d, want 1", st.BuildMisses)
	}
	if got := st.RunMisses; got != 1 {
		t.Errorf("RunMisses = %d, want 1 (one execution for %d identical requests)", got, n)
	}
}
