// Campaign endpoints: remote sweeps over the serving daemon.
//
// POST /v1/sweep accepts a sweep.Grid, expands it to the same canonical
// unit order a local unisweep run uses, executes every unit from the
// request's cursor onward through the ordinary worker pool, and streams
// results back as NDJSON:
//
//	{"schema":"unicache-campaign/v1","units":N,"cursor":C}   header
//	{"key":...}                                              one line per
//	                                                         sweep.Record,
//	                                                         canonical order
//	{"done":true,"sent":K}                                   trailer, or
//	{"sent":K,"error_kind":...,"error":...,"unit":I}         error trailer
//
// The record lines are exactly Record.MarshalLine — the bytes a local
// sweep would put in its artifact — so a client that concatenates them
// through sweep.WriteJSONLines reproduces the local artifact
// byte-for-byte. The unit-index cursor makes the stream resumable: a
// client that lost the connection after K records re-requests with
// cursor C+K and receives the remainder; records are pure functions of
// their units, so the splice is seamless.
//
// Units flow through the shared admission queue (one task per unit) but
// under a private window (Config.CampaignWindow) so a large grid cannot
// monopolize admission: at most window units are queued or running at
// once, and interactive traffic interleaves freely. Each unit executes
// inside an artifact.Session with ClassLive — campaign entries are
// tagged as predicted-reuse for the store GC, and (on a disk store)
// pinned against eviction while the campaign runs. After a successful
// campaign, one GC cycle sweeps the store back under the configured
// byte budget.
//
// POST /v1/gc runs a GC cycle on demand and returns the report.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/ice"
	"repro/internal/sweep"
)

// CampaignSchema tags the /v1/sweep stream's header line.
const CampaignSchema = "unicache-campaign/v1"

// GCSchema tags the /v1/gc response.
const GCSchema = "unicache-gc-report/v1"

// maxCampaignUnits caps a single campaign request; larger grids must be
// split by the client (the paper grid is 432 units — the cap is generous).
const maxCampaignUnits = 100_000

// SweepRequest is the /v1/sweep body.
type SweepRequest struct {
	Grid   sweep.Grid `json:"grid"`
	Cursor int        `json:"cursor,omitempty"` // canonical unit index to start from
	// DeadlineMS bounds the whole campaign; 0 means no server-side bound
	// (the client's connection is the lifetime).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// CampaignHeader is the stream's first line.
type CampaignHeader struct {
	Schema string `json:"schema"`
	Units  int    `json:"units"`
	Cursor int    `json:"cursor"`
}

// CampaignTrailer is the stream's last line.
type CampaignTrailer struct {
	Done      bool   `json:"done,omitempty"`
	Sent      int    `json:"sent"`
	ErrorKind string `json:"error_kind,omitempty"`
	Error     string `json:"error,omitempty"`
	Unit      int    `json:"unit,omitempty"` // canonical index where the campaign stopped
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.handlersWG.Add(1)
	defer s.handlersWG.Done()
	if s.draining.Load() {
		s.reject(w, (&Response{}).fail(http.StatusServiceUnavailable, KindDraining, "",
			"server is draining"))
		return
	}

	body := http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxSourceBytes))
	var req SweepRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.reject(w, (&Response{}).fail(http.StatusBadRequest, KindRequest, "",
			"bad request JSON: "+err.Error()))
		return
	}
	units, err := req.Grid.Units()
	if err != nil {
		s.reject(w, (&Response{}).fail(http.StatusBadRequest, KindRequest, "grid", err.Error()))
		return
	}
	if len(units) > maxCampaignUnits {
		s.reject(w, (&Response{}).fail(http.StatusBadRequest, KindRequest, "grid",
			fmt.Sprintf("grid expands to %d units (cap %d); split the campaign", len(units), maxCampaignUnits)))
		return
	}
	if req.Cursor < 0 || req.Cursor > len(units) {
		s.reject(w, (&Response{}).fail(http.StatusBadRequest, KindRequest, "cursor",
			fmt.Sprintf("cursor %d out of range [0,%d]", req.Cursor, len(units))))
		return
	}

	cctx := r.Context()
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(cctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}

	// Campaign traffic is the store's predicted-reuse class; on a disk
	// store the session also pins touched entries against a concurrent GC.
	sess := s.arts.NewSession(artifact.ClassLive, s.arts.HasDisk())
	defer sess.Close()
	s.met.noteCampaign()
	s.logf("campaign: %d units from cursor %d", len(units), req.Cursor)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	writeLine := func(b []byte) bool {
		if _, err := w.Write(append(b, '\n')); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	writeJSONLine := func(v any) bool {
		b, err := json.Marshal(v)
		if err != nil {
			return false
		}
		return writeLine(b)
	}
	if !writeJSONLine(CampaignHeader{Schema: CampaignSchema, Units: len(units), Cursor: req.Cursor}) {
		return
	}

	// Dispatcher: feeds units into the worker queue under the campaign
	// window. Joined before the handler returns (the queue must never see
	// a send after Shutdown closes it — handlersWG guards that ordering).
	n := len(units) - req.Cursor
	replies := make([]chan *Response, n)
	for i := range replies {
		replies[i] = make(chan *Response, 1)
	}
	dctx, dcancel := context.WithCancel(cctx)
	sem := make(chan struct{}, s.cfg.CampaignWindow)
	var dwg sync.WaitGroup
	dwg.Add(1)
	go func() {
		defer dwg.Done()
		for i := 0; i < n; i++ {
			select {
			case sem <- struct{}{}:
			case <-dctx.Done():
				return
			}
			u := units[req.Cursor+i]
			t := &task{
				ctx:   dctx,
				enq:   time.Now(), //unilint:ok wallclock queue-wait timestamp for the QueueNS latency metric
				reply: replies[i],
				done:  func() { <-sem },
			}
			t.exec = func(t *task) *Response { return s.execUnit(sess, u, t) }
			select {
			case s.queue <- t:
			case <-dctx.Done():
				<-sem // return the slot taken above
				return
			}
		}
	}()
	defer dwg.Wait()
	defer dcancel() // runs before the Wait above (LIFO), unblocking the dispatcher

	// Collector: deliver records in canonical order, abort on the first
	// unit error or client disconnect.
	sent := 0
	var failResp *Response
	aborted := false
	for i := 0; i < n; i++ {
		var resp *Response
		select {
		case resp = <-replies[i]:
		case <-cctx.Done():
			aborted = true
		}
		if aborted {
			break
		}
		if resp.ErrorKind != "" {
			failResp = resp
			break
		}
		if !writeLine(resp.recLine) {
			aborted = true // client went away mid-stream; cursor resume covers it
			break
		}
		sent++
	}

	switch {
	case failResp != nil:
		writeJSONLine(CampaignTrailer{Sent: sent, ErrorKind: failResp.ErrorKind,
			Error: failResp.Error, Unit: req.Cursor + sent})
	case aborted:
		// Best-effort: if the connection is dead this write just fails.
		writeJSONLine(CampaignTrailer{Sent: sent, ErrorKind: KindTimeout,
			Error: "campaign canceled", Unit: req.Cursor + sent})
	default:
		writeJSONLine(CampaignTrailer{Done: true, Sent: sent})
		s.logf("campaign: done, %d records streamed", sent)
		// The store just absorbed a campaign's worth of entries; sweep it
		// back under budget. Release the session's pins first.
		if s.cfg.StoreBudgetBytes > 0 && s.arts.HasDisk() {
			sess.Close()
			if rep, gerr := s.GC(0); gerr == nil {
				s.logf("campaign: post-GC evicted %d entries (%d bytes); %d bytes remain",
					rep.EvictedBypass+rep.EvictedLive, rep.EvictedBytes, rep.RemainingBytes)
			}
		}
	}
}

// execUnit runs one campaign unit on a worker, ice-guarded like every
// other request, and carries the marshaled record line back on the
// response.
func (s *Server) execUnit(sess *artifact.Session, u sweep.Unit, t *task) *Response {
	resp := &Response{ID: fmt.Sprintf("r%06d", s.seq.Add(1)), Status: http.StatusOK}
	resp.Timing.QueueNS = time.Since(t.enq).Nanoseconds() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
	started := time.Now()                                 //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
	var rec sweep.Record
	phase := "campaign"
	err := func() (err error) {
		defer ice.GuardPhase(&phase, &err)
		rec, err = sweep.RunUnit(sess, u, t.ctx.Done())
		return err
	}()
	resp.Timing.SimNS = time.Since(started).Nanoseconds() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
	resp.Timing.TotalNS = resp.Timing.QueueNS + resp.Timing.SimNS
	if err != nil {
		return s.classify(resp, phase, err)
	}
	line, merr := rec.MarshalLine()
	if merr != nil {
		return resp.fail(http.StatusInternalServerError, KindInternal, "campaign-encode", merr.Error())
	}
	resp.recLine = line
	s.met.noteUnit()
	return resp
}

// gcHTTPRequest is the /v1/gc body (optional; empty means the server's
// configured budget).
type gcHTTPRequest struct {
	Budget int64 `json:"budget,omitempty"`
}

func (s *Server) handleGC(w http.ResponseWriter, r *http.Request) {
	s.handlersWG.Add(1)
	defer s.handlersWG.Done()
	if s.draining.Load() {
		s.reject(w, (&Response{}).fail(http.StatusServiceUnavailable, KindDraining, "",
			"server is draining"))
		return
	}
	var req gcHTTPRequest
	body := http.MaxBytesReader(w, r.Body, 1<<16)
	if err := json.NewDecoder(body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.reject(w, (&Response{}).fail(http.StatusBadRequest, KindRequest, "",
			"bad request JSON: "+err.Error()))
		return
	}
	if !s.arts.HasDisk() {
		s.reject(w, (&Response{}).fail(http.StatusBadRequest, KindRequest, "gc",
			"cache is memory-only; start the daemon with a cache directory"))
		return
	}
	rep, err := s.GC(req.Budget)
	if err != nil {
		s.reject(w, (&Response{}).fail(http.StatusBadRequest, KindRequest, "gc", err.Error()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Schema string `json:"schema"`
		*artifact.GCReport
	}{GCSchema, rep})
}
