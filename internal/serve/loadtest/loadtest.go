// Package loadtest is the seeded load-test harness for the unicached
// service. It drives a running daemon over HTTP with a deterministic,
// seeded mix of traffic — dedup-heavy compile+simulate, periodic check
// and exact analyses, budget-exhausting oversized programs, and (against
// a Debug daemon) injected panics — and aggregates per-request outcomes
// into the same latency histogram the server keeps, dumped as
// BENCH_serve.json (schema unicache-serve-bench/v1).
//
// The harness is itself the robustness proof: the acceptance bar is a
// daemon that sustains the full mix at four-digit request rates with
// zero crashes, where every injected fault comes back as a structured
// error instead of a dead process.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// BenchSchema tags the persisted report.
const BenchSchema = "unicache-serve-bench/v1"

// Options parameterizes a run. Zero fields take the defaults noted.
type Options struct {
	BaseURL     string // daemon base URL (required), e.g. http://127.0.0.1:8080
	Requests    int    // total requests (default 2000)
	Concurrency int    // concurrent clients (default 32)
	Seed        int64  // traffic-mix seed (default 1)

	// SourcePool is the number of distinct generated programs; requests
	// draw from this small pool so the mix is dedup-heavy by construction
	// (default 8).
	SourcePool int

	// Fault mix, as periods over the request index (0 disables):
	// every PanicEvery-th request injects a panic (needs a Debug daemon),
	// every BudgetEvery-th sends a spin program under a tiny step budget
	// (the oversized-program case), every CheckEvery-th adds the check
	// tier and every ExactEvery-th the exact tier.
	PanicEvery  int // default 101
	BudgetEvery int // default 53
	CheckEvery  int // default 11
	ExactEvery  int // default 29

	DeadlineMS int64 // per-request deadline (default 5000)
}

func (o Options) withDefaults() Options {
	if o.Requests <= 0 {
		o.Requests = 2000
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SourcePool <= 0 {
		o.SourcePool = 8
	}
	if o.PanicEvery == 0 {
		o.PanicEvery = 101
	}
	if o.BudgetEvery == 0 {
		o.BudgetEvery = 53
	}
	if o.CheckEvery == 0 {
		o.CheckEvery = 11
	}
	if o.ExactEvery == 0 {
		o.ExactEvery = 29
	}
	if o.DeadlineMS <= 0 {
		o.DeadlineMS = 5000
	}
	return o
}

// Report is the persisted outcome of one run.
type Report struct {
	Schema      string `json:"schema"`
	Seed        int64  `json:"seed"`
	Requests    int    `json:"requests"`
	Concurrency int    `json:"concurrency"`
	SourcePool  int    `json:"source_pool"`

	DurationMS int64   `json:"duration_ms"`
	Throughput float64 `json:"throughput_rps"`

	// Outcomes maps the service's outcome tags ("ok", "ok-degraded",
	// "panic", "budget", ...) to counts; TransportErrors counts requests
	// that never produced a decodable response (the daemon-crashed
	// signal — the acceptance bar is zero).
	Outcomes        map[string]int64 `json:"outcomes"`
	TransportErrors int64            `json:"transport_errors"`

	PanicsInjected int64 `json:"panics_injected"`
	PanicsIsolated int64 `json:"panics_isolated"`
	// PanicsShed counts panic-injected requests the daemon refused at
	// admission (429/503) — they never reached a worker, so there was
	// nothing to isolate. Injected = Isolated + Shed, or the daemon
	// swallowed a panic.
	PanicsShed int64 `json:"panics_shed"`
	// Dials counts TCP connections the harness opened. With keep-alives a
	// storm should reuse roughly one connection per concurrent client, so
	// the acceptance bar is dials ≪ requests (VerifyBench enforces it) —
	// the regression this catches is a client stack quietly falling back
	// to a dial per request.
	Dials int64 `json:"dials"`

	BudgetsInjected int64 `json:"budgets_injected"`
	// BudgetsStructured counts budget bombs that came back as one of the
	// structured refusals (budget, timeout, or an admission shed). A bomb
	// outside this set either "succeeded" (budget not enforced) or killed
	// something — both verification failures.
	BudgetsStructured int64 `json:"budgets_structured"`
	Deduped           int64 `json:"deduped"` // responses flagged as single-flight hits

	Latency *serve.Histogram `json:"latency"`
	P50NS   int64            `json:"p50_ns"`
	P90NS   int64            `json:"p90_ns"`
	P99NS   int64            `json:"p99_ns"`
	MaxNS   int64            `json:"max_ns"`

	// HealthyAfter records that /healthz still answered once the storm
	// had passed — the zero-crashes check in executable form.
	HealthyAfter bool `json:"healthy_after"`
}

// newSeededRand is the harness's only randomness source; everything
// derives deterministically from the seed.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// genSource emits one small deterministic MC program from r. Programs
// vary in constants and array sizes but all finish in a few thousand
// instructions, so throughput measures the service, not the programs.
func genSource(r *rand.Rand) string {
	n := 8 + r.Intn(24)
	mul := 1 + r.Intn(9)
	add := r.Intn(100)
	return fmt.Sprintf(`
int a[%d];
void main() {
    int i;
    int s;
    s = %d;
    for (i = 0; i < %d; i++) {
        a[i] = i * %d;
    }
    for (i = 0; i < %d; i++) {
        s = s + a[i];
    }
    print(s);
}`, n, add, n, mul, n)
}

// spin is the budget-exhausting program: far more iterations than any
// sane step budget allows.
const spin = `
void main() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 100000000; i++) {
        acc = acc + i;
    }
    print(acc);
}`

// requestFor builds the deterministic request for index i.
func (o Options) requestFor(i int, pool []string) *serve.Request {
	rq := &serve.Request{
		Source:     pool[i%len(pool)],
		DeadlineMS: o.DeadlineMS,
		Want:       []string{serve.TierCompile, serve.TierSimulate},
	}
	if o.CheckEvery > 0 && i%o.CheckEvery == 0 {
		rq.Want = append(rq.Want, serve.TierCheck)
	}
	if o.ExactEvery > 0 && i%o.ExactEvery == 0 {
		rq.Want = append(rq.Want, serve.TierExact)
	}
	if o.BudgetEvery > 0 && i%o.BudgetEvery == 1 {
		rq.Source = spin
		rq.MaxSteps = 50_000
		rq.Want = []string{serve.TierSimulate}
	}
	if o.PanicEvery > 0 && i%o.PanicEvery == 2 {
		rq.InjectPanic = "loadtest"
		rq.Want = []string{serve.TierSimulate}
	}
	return rq
}

// Run drives the daemon and aggregates the report.
func Run(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	if opt.BaseURL == "" {
		return nil, fmt.Errorf("loadtest: BaseURL required")
	}

	rng := newSeededRand(opt.Seed)
	pool := make([]string, opt.SourcePool)
	for i := range pool {
		pool[i] = genSource(rng)
	}

	rep := &Report{
		Schema:      BenchSchema,
		Seed:        opt.Seed,
		Requests:    opt.Requests,
		Concurrency: opt.Concurrency,
		SourcePool:  opt.SourcePool,
		Outcomes:    make(map[string]int64),
		Latency:     serve.NewHistogram(),
	}

	// One shared client with keep-alives and a counted dialer: the dial
	// count lands in the report so connection churn is an asserted
	// invariant, not a hidden cost.
	var dials atomic.Int64
	dialer := &net.Dialer{Timeout: 10 * time.Second, KeepAlive: 30 * time.Second}
	client := &http.Client{
		Timeout: time.Duration(opt.DeadlineMS+10_000) * time.Millisecond,
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
				dials.Add(1)
				return dialer.DialContext(ctx, network, addr)
			},
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	idx := make(chan int)
	start := time.Now() //unilint:ok wallclock throughput denominator of the load-test report; wall time is the measurand
	for w := 0; w < opt.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rq := opt.requestFor(i, pool)
				t0 := time.Now() //unilint:ok wallclock per-request latency sample; the report is a measurement, not a golden
				resp, err := postEval(client, opt.BaseURL, rq)
				ns := time.Since(t0).Nanoseconds() //unilint:ok wallclock per-request latency sample; the report is a measurement, not a golden
				mu.Lock()
				if rq.InjectPanic != "" {
					rep.PanicsInjected++
				}
				if rq.MaxSteps > 0 {
					rep.BudgetsInjected++
				}
				if err != nil {
					rep.TransportErrors++
				} else {
					rep.Outcomes[outcomeTag(resp)]++
					if rq.InjectPanic != "" {
						switch resp.ErrorKind {
						case serve.KindPanic:
							rep.PanicsIsolated++
						case serve.KindOverload, serve.KindDraining, serve.KindShed:
							rep.PanicsShed++
						}
					}
					if rq.MaxSteps > 0 {
						switch resp.ErrorKind {
						case serve.KindBudget, serve.KindTimeout,
							serve.KindOverload, serve.KindDraining, serve.KindShed:
							rep.BudgetsStructured++
						}
					}
					if resp.Deduped {
						rep.Deduped++
					}
					rep.Latency.Observe(ns)
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < opt.Requests; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	elapsed := time.Since(start) //unilint:ok wallclock throughput denominator of the load-test report; wall time is the measurand

	rep.DurationMS = elapsed.Milliseconds()
	if secs := elapsed.Seconds(); secs > 0 {
		rep.Throughput = float64(opt.Requests) / secs
	}
	rep.P50NS = rep.Latency.Quantile(0.50)
	rep.P90NS = rep.Latency.Quantile(0.90)
	rep.P99NS = rep.Latency.Quantile(0.99)
	rep.MaxNS = rep.Latency.MaxNS
	rep.Dials = dials.Load()

	if hr, err := client.Get(opt.BaseURL + "/healthz"); err == nil {
		hr.Body.Close()
		rep.HealthyAfter = hr.StatusCode == http.StatusOK
	}
	return rep, nil
}

func outcomeTag(resp *serve.Response) string {
	if resp.ErrorKind != "" {
		return resp.ErrorKind
	}
	if len(resp.Degraded) > 0 {
		return "ok-degraded"
	}
	return "ok"
}

func postEval(client *http.Client, base string, rq *serve.Request) (*serve.Response, error) {
	body, err := json.Marshal(rq)
	if err != nil {
		return nil, err
	}
	hr, err := client.Post(base+"/v1/eval", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer hr.Body.Close()
	var resp serve.Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// WriteBench persists the report (pretty-printed, trailing newline).
func WriteBench(path string, rep *Report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o666)
}

// VerifyBench validates a persisted report's schema and basic sanity —
// the CI gate for the checked-in BENCH_serve.json.
func VerifyBench(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != BenchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, BenchSchema)
	}
	if rep.Requests <= 0 || rep.Throughput <= 0 || rep.Latency == nil || rep.Latency.Count <= 0 {
		return nil, fmt.Errorf("%s: degenerate report (requests=%d, rps=%.1f)", path, rep.Requests, rep.Throughput)
	}
	if rep.TransportErrors > 0 {
		return nil, fmt.Errorf("%s: %d transport errors — the daemon dropped requests", path, rep.TransportErrors)
	}
	if rep.Outcomes["ok"] <= 0 {
		return nil, fmt.Errorf("%s: no successful requests", path)
	}
	if rep.PanicsInjected != rep.PanicsIsolated+rep.PanicsShed {
		return nil, fmt.Errorf("%s: %d panics injected but only %d isolated and %d shed — one was swallowed",
			path, rep.PanicsInjected, rep.PanicsIsolated, rep.PanicsShed)
	}
	if rep.BudgetsInjected != rep.BudgetsStructured {
		return nil, fmt.Errorf("%s: %d budget bombs injected but only %d came back structured",
			path, rep.BudgetsInjected, rep.BudgetsStructured)
	}
	if rep.Requests >= 100 {
		if rep.Dials < 1 {
			return nil, fmt.Errorf("%s: no dial accounting (dials=%d)", path, rep.Dials)
		}
		if rep.Dials*8 > int64(rep.Requests) {
			return nil, fmt.Errorf("%s: %d dials for %d requests — connection reuse is broken",
				path, rep.Dials, rep.Requests)
		}
	}
	return &rep, nil
}
