package loadtest

import (
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestRunMixedStorm boots an in-process Debug daemon and drives the full
// deterministic mix — dedup-heavy evals, periodic check/exact, budget
// bombs, injected panics — asserting the daemon survives everything with
// structured answers only.
func TestRunMixedStorm(t *testing.T) {
	s, err := serve.New(serve.Config{Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := Run(Options{
		BaseURL:     ts.URL,
		Requests:    600,
		Concurrency: 16,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransportErrors != 0 {
		t.Fatalf("%d transport errors: the daemon dropped requests", rep.TransportErrors)
	}
	if !rep.HealthyAfter {
		t.Error("daemon unhealthy after the storm")
	}
	if rep.PanicsInjected == 0 || rep.PanicsInjected != rep.PanicsIsolated+rep.PanicsShed {
		t.Errorf("panics injected=%d isolated=%d shed=%d, want injected = isolated+shed, nonzero",
			rep.PanicsInjected, rep.PanicsIsolated, rep.PanicsShed)
	}
	if rep.BudgetsInjected == 0 || rep.BudgetsStructured != rep.BudgetsInjected {
		t.Errorf("budget bombs=%d, structured=%d, want equal and nonzero",
			rep.BudgetsInjected, rep.BudgetsStructured)
	}
	if rep.Outcomes[serve.KindBudget] == 0 {
		t.Error("no budget bomb ever reached a worker")
	}
	if rep.Deduped == 0 {
		t.Error("dedup-heavy mix produced zero single-flight hits")
	}
	if rep.Outcomes["ok"] == 0 {
		t.Error("no successful requests")
	}
	if rep.Latency.Count == 0 || rep.P50NS == 0 {
		t.Errorf("degenerate latency aggregation: %+v", rep.Latency)
	}

	// Round-trip through the persisted form and the CI verifier.
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := WriteBench(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := VerifyBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Throughput != rep.Throughput || got.Seed != rep.Seed {
		t.Errorf("round-trip mismatch: %+v vs %+v", got, rep)
	}
}

// TestDeterministicMix: the same seed generates the same source pool and
// per-index requests.
func TestDeterministicMix(t *testing.T) {
	opt := Options{Seed: 42}.withDefaults()
	mk := func() []string {
		// Rebuild the pool exactly as Run does.
		rng := newSeededRand(opt.Seed)
		pool := make([]string, opt.SourcePool)
		for i := range pool {
			pool[i] = genSource(rng)
		}
		return pool
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pool diverges at %d", i)
		}
		if !strings.Contains(a[i], "print(s);") {
			t.Fatalf("generated program malformed:\n%s", a[i])
		}
	}
	ra := opt.requestFor(11, a) // CheckEvery default 11
	if len(ra.Want) < 3 {
		t.Errorf("index 11 should include check tier, got %v", ra.Want)
	}
	rb := opt.requestFor(54, a) // BudgetEvery default 53: 54%53==1
	if rb.MaxSteps == 0 || rb.Source != spin {
		t.Errorf("index 54 should be a budget bomb, got %+v", rb)
	}
}

// TestVerifyBenchRejects: the verifier refuses wrong schemas and
// transport errors.
func TestVerifyBenchRejects(t *testing.T) {
	dir := t.TempDir()
	bad := &Report{Schema: "wrong/v0", Requests: 1, Throughput: 1,
		Latency: serve.NewHistogram()}
	bad.Latency.Observe(int64(time.Millisecond))
	p := filepath.Join(dir, "bad.json")
	if err := WriteBench(p, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyBench(p); err == nil {
		t.Error("wrong schema accepted")
	}
	crashy := &Report{Schema: BenchSchema, Requests: 10, Throughput: 5,
		TransportErrors: 2, Latency: serve.NewHistogram(),
		Outcomes: map[string]int64{"ok": 8}}
	crashy.Latency.Observe(int64(time.Millisecond))
	p2 := filepath.Join(dir, "crashy.json")
	if err := WriteBench(p2, crashy); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyBench(p2); err == nil {
		t.Error("report with transport errors accepted")
	}
}
