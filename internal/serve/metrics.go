package serve

import (
	"sync"
	"time"

	"repro/internal/artifact"
)

// Timing is the flat per-request timing/outcome record: one struct, one
// level, CSV-friendly — the shape the service aggregates into its latency
// histogram and the load-test harness streams into BENCH_serve.json.
type Timing struct {
	QueueNS   int64 `json:"queue_ns"`
	CompileNS int64 `json:"compile_ns,omitempty"`
	SimNS     int64 `json:"sim_ns,omitempty"`
	CheckNS   int64 `json:"check_ns,omitempty"`
	ExactNS   int64 `json:"exact_ns,omitempty"`
	TotalNS   int64 `json:"total_ns"`
}

// Histogram is a fixed-bucket base-2 exponential latency histogram.
// Bounds run from 1.024µs (2^10 ns) to ~17s (2^34 ns); the final count
// bucket is the overflow. Not safe for concurrent use on its own — the
// server guards it with the metrics mutex.
type Histogram struct {
	BoundsNS []int64 `json:"bounds_ns"` // inclusive upper bounds, one per bucket
	Counts   []int64 `json:"counts"`    // len(BoundsNS)+1: last is overflow
	Count    int64   `json:"count"`
	SumNS    int64   `json:"sum_ns"`
	MaxNS    int64   `json:"max_ns"`
}

// NewHistogram returns an empty histogram with the standard bounds —
// shared with the load-test harness so service and harness aggregate
// into identical bucket layouts.
func NewHistogram() *Histogram { return newHistogram() }

func newHistogram() *Histogram {
	const lo, hi = 10, 34
	h := &Histogram{}
	for e := lo; e <= hi; e++ {
		h.BoundsNS = append(h.BoundsNS, int64(1)<<e)
	}
	h.Counts = make([]int64, len(h.BoundsNS)+1)
	return h
}

// Observe records one latency.
func (h *Histogram) Observe(ns int64) {
	h.Count++
	h.SumNS += ns
	if ns > h.MaxNS {
		h.MaxNS = ns
	}
	for i, b := range h.BoundsNS {
		if ns <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Counts)-1]++
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the bound of the bucket holding the q·Count-th observation, or MaxNS for
// the overflow bucket. Zero when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.BoundsNS) {
				return h.BoundsNS[i]
			}
			return h.MaxNS
		}
	}
	return h.MaxNS
}

// metrics aggregates per-request outcomes under one mutex.
type metrics struct {
	mu       sync.Mutex
	start    time.Time
	outcomes map[string]int64 // outcome tag -> count
	degraded map[string]int64 // shed tier -> count
	panics   int64
	hist     *Histogram

	// Batching-layer counters.
	coalesced int64 // follower requests answered by a coalesced leader
	flushes   int64 // batch windows flushed into the queue
	grouped   int64 // request sets served through a shared batch execution

	// Campaign counters and the latest GC outcome.
	campaigns     int64
	campaignUnits int64
	lastGC        *artifact.GCReport
}

func (m *metrics) noteCoalesced() { m.mu.Lock(); m.coalesced++; m.mu.Unlock() }
func (m *metrics) noteFlush()     { m.mu.Lock(); m.flushes++; m.mu.Unlock() }
func (m *metrics) noteGrouped(sets int) {
	m.mu.Lock()
	m.grouped += int64(sets)
	m.mu.Unlock()
}
func (m *metrics) noteCampaign() { m.mu.Lock(); m.campaigns++; m.mu.Unlock() }
func (m *metrics) noteUnit()     { m.mu.Lock(); m.campaignUnits++; m.mu.Unlock() }
func (m *metrics) noteGC(rep *artifact.GCReport) {
	cp := *rep
	m.mu.Lock()
	m.lastGC = &cp
	m.mu.Unlock()
}

func newMetrics() *metrics {
	return &metrics{
		start:    time.Now(), //unilint:ok wallclock uptime metric epoch for the /metrics endpoint
		outcomes: make(map[string]int64),
		degraded: make(map[string]int64),
		hist:     newHistogram(),
	}
}

func (m *metrics) observe(resp *Response) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.outcomes[resp.outcome()]++
	for _, tier := range resp.Degraded {
		m.degraded[tier]++
	}
	if resp.ErrorKind == KindPanic {
		m.panics++
	}
	m.hist.Observe(resp.Timing.TotalNS)
}

// Snapshot is the machine-readable health/statistics report served at
// /v1/stats (schema unicache-serve-stats/v1).
type Snapshot struct {
	Schema   string `json:"schema"`
	UptimeMS int64  `json:"uptime_ms"`

	Workers  int  `json:"workers"`
	QueueLen int  `json:"queue_len"`
	QueueCap int  `json:"queue_cap"`
	Draining bool `json:"draining"`

	Outcomes map[string]int64 `json:"outcomes"`
	Degraded map[string]int64 `json:"degraded,omitempty"`
	Panics   int64            `json:"panics"`

	// Deduped counts requests answered by an already-present (or
	// in-flight) identical compile — the single-flight counter.
	Deduped   int64          `json:"deduped"`
	Artifacts artifact.Stats `json:"artifacts"`

	// Batching-layer counters: followers coalesced before the queue,
	// windows flushed, and request sets served via shared batch replay.
	Coalesced    int64 `json:"coalesced,omitempty"`
	BatchFlushes int64 `json:"batch_flushes,omitempty"`
	GroupedSets  int64 `json:"grouped_sets,omitempty"`

	// Campaign counters and the most recent store-GC report.
	Campaigns     int64              `json:"campaigns,omitempty"`
	CampaignUnits int64              `json:"campaign_units,omitempty"`
	LastGC        *artifact.GCReport `json:"last_gc,omitempty"`

	Latency  *Histogram `json:"latency"`
	P50NS    int64      `json:"p50_ns"`
	P90NS    int64      `json:"p90_ns"`
	P99NS    int64      `json:"p99_ns"`
	MeanNS   int64      `json:"mean_ns"`
	Requests int64      `json:"requests"`
}

// StatsSchema is the Snapshot schema tag.
const StatsSchema = "unicache-serve-stats/v1"

func (m *metrics) snapshot(arts artifact.Stats, workers, qlen, qcap int, draining bool) *Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := &Histogram{
		BoundsNS: append([]int64(nil), m.hist.BoundsNS...),
		Counts:   append([]int64(nil), m.hist.Counts...),
		Count:    m.hist.Count,
		SumNS:    m.hist.SumNS,
		MaxNS:    m.hist.MaxNS,
	}
	out := make(map[string]int64, len(m.outcomes))
	for k, v := range m.outcomes {
		out[k] = v
	}
	deg := make(map[string]int64, len(m.degraded))
	for k, v := range m.degraded {
		deg[k] = v
	}
	s := &Snapshot{
		Schema:   StatsSchema,
		UptimeMS: time.Since(m.start).Milliseconds(), //unilint:ok wallclock uptime metric for the /metrics endpoint; operational, never hashed
		Workers:  workers, QueueLen: qlen, QueueCap: qcap, Draining: draining,
		Outcomes: out, Degraded: deg, Panics: m.panics,
		Deduped:       arts.BuildHits,
		Artifacts:     arts,
		Coalesced:     m.coalesced,
		BatchFlushes:  m.flushes,
		GroupedSets:   m.grouped,
		Campaigns:     m.campaigns,
		CampaignUnits: m.campaignUnits,
		LastGC:        m.lastGC,
		Latency:       h,
		P50NS:         h.Quantile(0.50),
		P90NS:         h.Quantile(0.90),
		P99NS:         h.Quantile(0.99),
		Requests:      h.Count,
	}
	if h.Count > 0 {
		s.MeanNS = h.SumNS / h.Count
	}
	return s
}
