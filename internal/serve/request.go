package serve

import (
	"fmt"
	"sort"

	"repro/internal/artifact"
	"repro/internal/cache"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/vm"
)

// Tier names a unit of optional work a request can ask for. Simulate is
// never shed — the paper's guarantee that hints are performance-only means
// a degraded answer is still a correct answer, and the service leans on
// exactly that: under pressure it drops exact first, then check, never the
// simulation itself.
const (
	TierCompile  = "compile"
	TierSimulate = "simulate"
	TierCheck    = "check"
	TierExact    = "exact"
)

// ErrorKind values of Response.ErrorKind.
const (
	KindRequest  = "request"          // malformed request (HTTP 400)
	KindCompile  = "compile-error"    // the program does not compile (400)
	KindBudget   = "budget"           // step budget exhausted (422)
	KindRuntime  = "runtime"          // program fault, e.g. division by zero (422)
	KindTimeout  = "timeout"          // deadline exceeded (504)
	KindPanic    = "panic"            // isolated internal panic (500)
	KindOverload = "overload"         // admission queue full (429)
	KindDraining = "draining"         // shutting down (503)
	KindShed     = "shed"             // queued at drain time, not admitted (503)
	KindTooLarge = "source-too-large" // admission size cap (413)
	KindInternal = "internal"         // environment failure, e.g. store perms (500)
)

// Request is one compile-and-simulate job. The zero value of every field
// is the paper's default (unified mode, default cache geometry).
type Request struct {
	Source string `json:"source"`

	// Compiler configuration (mirrors unicache.CompileOptions).
	Mode           string `json:"mode,omitempty"` // "unified" (default) or "conventional"
	Optimize       bool   `json:"optimize,omitempty"`
	Inline         bool   `json:"inline,omitempty"`
	PromoteGlobals bool   `json:"promote_globals,omitempty"`
	StackScalars   bool   `json:"stack_scalars,omitempty"`

	// Want lists the tiers to run; empty means the endpoint's default.
	Want []string `json:"want,omitempty"`

	Cache    CacheSpec `json:"cache,omitempty"`
	MaxSteps int64     `json:"max_steps,omitempty"`

	// DeadlineMS bounds the whole request (queue wait included); 0 means
	// the server default, and values above the server maximum are clamped.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// WantAssembly adds the full UM assembly listing to the compile
	// result (off by default: listings dwarf the statistics).
	WantAssembly bool `json:"want_assembly,omitempty"`

	// Fault-injection seams, honored only when the server runs with
	// Config.Debug — the load-test harness and CI use them to prove panic
	// isolation and drain behavior without planting real bugs.
	InjectPanic   string `json:"inject_panic,omitempty"`
	InjectSleepMS int64  `json:"inject_sleep_ms,omitempty"`
}

// CacheSpec parameterizes the simulated data cache (zero fields keep the
// mode's defaults, exactly like unicache.CacheOptions).
type CacheSpec struct {
	Sets        int    `json:"sets,omitempty"`
	Ways        int    `json:"ways,omitempty"`
	LineWords   int    `json:"line_words,omitempty"`
	Policy      string `json:"policy,omitempty"`
	DeadMarking string `json:"dead_marking,omitempty"`
	HonorBypass *bool  `json:"honor_bypass,omitempty"`
	Seed        uint64 `json:"seed,omitempty"`
}

// CompileResult is the compile tier's answer.
type CompileResult struct {
	Key      string           `json:"key"` // content address (short prefix)
	Static   core.StaticStats `json:"static"`
	Assembly string           `json:"assembly,omitempty"`
}

// SimResult is the simulate tier's answer.
type SimResult struct {
	Output       string      `json:"output"`
	Instructions int64       `json:"instructions"`
	Loads        int64       `json:"loads"`
	Stores       int64       `json:"stores"`
	Cache        cache.Stats `json:"cache"`
}

// CheckResult is the check tier's answer: static verifier violations plus
// the must/may cache-analysis summary.
type CheckResult struct {
	Violations int      `json:"violations"`
	Messages   []string `json:"messages,omitempty"` // capped at 8
	CacheLine  string   `json:"cache_summary"`
}

// ExactResult is the exact tier's answer (counts from exact.Report).
type ExactResult struct {
	Total       int    `json:"total"`
	Bypassed    int    `json:"bypassed"`
	PreHit      int    `json:"pre_hit"`
	PreMiss     int    `json:"pre_miss"`
	ExactHit    int    `json:"exact_hit"`
	ExactMiss   int    `json:"exact_miss"`
	Irreducible int    `json:"irreducible"`
	Solver      string `json:"solver"`
	Steps       int64  `json:"steps"`
	Exhausted   bool   `json:"exhausted"`
}

// Response is the service's answer. Status carries the HTTP code out of
// the worker; it is not part of the JSON body (the transport already says
// it).
type Response struct {
	ID     string `json:"id"`
	Status int    `json:"-"`

	ErrorKind string `json:"error_kind,omitempty"`
	Error     string `json:"error,omitempty"`
	Phase     string `json:"phase,omitempty"` // pipeline phase for panics/timeouts

	Deduped  bool     `json:"deduped,omitempty"`  // single-flight hit
	Degraded []string `json:"degraded,omitempty"` // tiers shed under pressure

	Compile  *CompileResult `json:"compile,omitempty"`
	Simulate *SimResult     `json:"simulate,omitempty"`
	Check    *CheckResult   `json:"check,omitempty"`
	Exact    *ExactResult   `json:"exact,omitempty"`

	Timing Timing `json:"timing"`

	// recLine carries a campaign unit's marshaled sweep.Record line from
	// the worker to the streaming handler; never serialized.
	recLine []byte
}

// outcome tags the response for the metrics maps.
func (r *Response) outcome() string {
	if r.ErrorKind != "" {
		return r.ErrorKind
	}
	if len(r.Degraded) > 0 {
		return "ok-degraded"
	}
	return "ok"
}

func (r *Response) fail(status int, kind, phase, msg string) *Response {
	r.Status = status
	r.ErrorKind = kind
	r.Phase = phase
	r.Error = msg
	return r
}

// coreConfig maps the request's compiler fields onto core.Config.
func (rq *Request) coreConfig() (core.Config, error) {
	cfg := core.Config{
		Optimize:       rq.Optimize,
		Inline:         rq.Inline,
		PromoteGlobals: rq.PromoteGlobals,
		StackScalars:   rq.StackScalars,
	}
	switch rq.Mode {
	case "", "unified":
		cfg.Mode = core.Unified
	case "conventional":
		cfg.Mode = core.Conventional
	default:
		return cfg, fmt.Errorf("unknown mode %q", rq.Mode)
	}
	return cfg, nil
}

// cacheConfig maps CacheSpec onto cache.Config with the mode's defaults,
// mirroring the public API's rules (MIN rejected: executing runs have no
// future knowledge).
func (rq *Request) cacheConfig(mode core.Mode) (cache.Config, error) {
	cfg := cache.DefaultConfig()
	if mode == core.Conventional {
		cfg = cache.ConventionalConfig()
	}
	o := rq.Cache
	if o.Sets != 0 {
		cfg.Sets = o.Sets
	}
	if o.Ways != 0 {
		cfg.Ways = o.Ways
	}
	if o.LineWords != 0 {
		cfg.LineWords = o.LineWords
	}
	if o.Policy != "" {
		pol, err := cache.ParsePolicy(o.Policy)
		if err != nil || pol == cache.MIN {
			return cfg, fmt.Errorf("unknown policy %q", o.Policy)
		}
		cfg.Policy = pol
	}
	if o.DeadMarking != "" {
		dm, err := cache.ParseDeadMode(o.DeadMarking)
		if err != nil {
			return cfg, fmt.Errorf("unknown dead-marking mode %q", o.DeadMarking)
		}
		cfg.Dead = dm
	}
	if o.HonorBypass != nil {
		cfg.HonorBypass = *o.HonorBypass
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return cfg, nil
}

// batchKey returns the coalescing identity of a request: two requests
// with equal keys are guaranteed the same response (up to ID, timing and
// the Deduped marker), so the batcher may execute one and fan the answer
// out. DeadlineMS is deliberately excluded — it shapes when an answer may
// be abandoned, not what the answer is. Debug-injection requests are
// never batchable (false).
func (rq *Request) batchKey() (string, bool) {
	if rq.InjectPanic != "" || rq.InjectSleepMS > 0 {
		return "", false
	}
	want := append([]string(nil), rq.Want...)
	sort.Strings(want)
	hb := "-"
	if rq.Cache.HonorBypass != nil {
		hb = fmt.Sprintf("%v", *rq.Cache.HonorBypass)
	}
	return fmt.Sprintf("%q|%s|%v%v%v%v|%v|%d.%d.%d.%s.%s.%s.%d|ms%d|asm%v",
		rq.Source, rq.Mode, rq.Optimize, rq.Inline, rq.PromoteGlobals, rq.StackScalars,
		want, rq.Cache.Sets, rq.Cache.Ways, rq.Cache.LineWords, rq.Cache.Policy,
		rq.Cache.DeadMarking, hb, rq.Cache.Seed, rq.MaxSteps, rq.WantAssembly), true
}

// groupKey returns the artifact-group identity: requests with equal group
// keys compile the same program under the same execution identity, so the
// batcher may serve them through one artifact.RunBatch (the VM runs once,
// the other geometries replay the encoded trace). Only simulate requests
// without analysis tiers group — check and exact run their own passes.
// Invalid requests (bad tier, mode or cache spec) report false and fail
// individually on the singleton path.
func (rq *Request) groupKey() (string, bool) {
	want, err := wantSet(rq.Want)
	if err != nil || !want[TierSimulate] || want[TierCheck] || want[TierExact] {
		return "", false
	}
	ccfg, err := rq.coreConfig()
	if err != nil {
		return "", false
	}
	if _, err := rq.cacheConfig(ccfg.Mode); err != nil {
		return "", false
	}
	k := artifact.KeyOf(rq.Source, ccfg)
	return fmt.Sprintf("%x|ms%d", k[:], rq.MaxSteps), true
}

// wantSet validates and normalizes the requested tiers.
func wantSet(want []string) (map[string]bool, error) {
	set := make(map[string]bool, len(want))
	for _, w := range want {
		switch w {
		case TierCompile, TierSimulate, TierCheck, TierExact:
			set[w] = true
		default:
			return nil, fmt.Errorf("unknown tier %q", w)
		}
	}
	return set, nil
}

// interface guards for the error types the classifier dispatches on.
var (
	_ error = (*vm.BudgetError)(nil)
	_ error = (*vm.CancelError)(nil)
	_ error = (*check.CanceledError)(nil)
	_       = exact.SolverAntichain
)
