// Package serve lifts the unicache compile-and-simulate pipeline into a
// hardened, long-running HTTP/JSON service.
//
// Robustness is the design axis, in six mechanisms:
//
//   - Admission control: a bounded worker pool behind an explicit bounded
//     queue. A full queue sheds load with 429 immediately — the service
//     never buffers unboundedly and never stalls accepted work behind an
//     unbounded backlog.
//   - Batched admission: requests accumulate for a max-wait window (or a
//     size threshold) before entering the queue. Identical requests
//     coalesce into one queue slot and one execution; distinct simulate
//     requests for the same program merge into one group task that
//     executes the VM once and derives the other geometries by replaying
//     the encoded trace (artifact.RunBatch) — bit-identical to direct
//     execution. A storm of near-identical traffic costs one compile and
//     ~one simulation. See batch.go.
//   - Deadlines: every request carries one (client-set, server-clamped),
//     measured from admission so queue time counts. It is plumbed as a
//     cancellation channel into the simulator (vm.Config.Done) and the
//     analyses (check.Options.Done), so an expiring request surfaces as a
//     structured timeout from inside the hot loops — not a hung worker.
//     Coalesced work runs under a context detached from any single
//     client, so one disconnect cannot cancel the others' answer.
//   - Single-flight dedup: identical in-flight compiles are keyed by the
//     artifact content hash and compile exactly once (internal/artifact),
//     optionally backed by the crash-safe persistent store — which, since
//     the store gained reuse classes, is kept under a byte budget by a
//     liveness-driven GC (artifact.GC, the /v1/gc endpoint, and the
//     post-campaign sweep).
//   - Graceful degradation: under queue pressure the service sheds exact
//     analysis first, then check — never simulate. The paper's own claim
//     (hints are performance-only; PR 2 proved it executable) is what
//     makes a degraded answer still a correct answer.
//   - Panic isolation: each request runs behind an internal/ice guard; a
//     panic in any pass becomes a 500 carrying the failing phase while
//     the daemon lives on.
//
// Campaigns: POST /v1/sweep accepts a sweep.Grid, expands it to canonical
// units, executes them through the same worker pool, and streams one
// record line per unit back (campaign.go) — resumable by unit cursor and
// byte-identical to a local unisweep run.
//
// Shutdown is drain-based: new admissions are refused (503), pending
// batch members are shed, requests already running complete, requests
// still queued are shed with 503, and the listener closes — all under a
// drain deadline.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/ice"
	"repro/internal/vm"
)

// Config parameterizes the service. Zero values mean the defaults noted
// per field.
type Config struct {
	Workers    int // worker-pool size (default GOMAXPROCS)
	QueueDepth int // admission queue capacity (default 4×workers)

	DefaultDeadline time.Duration // per-request default (default 10s)
	MaxDeadline     time.Duration // per-request clamp (default 60s)
	DrainDeadline   time.Duration // shutdown drain budget (default 15s)

	// BatchMaxWait is the admission batching window: a batchable request
	// waits up to this long for near-identical traffic to coalesce with
	// before entering the queue (default 2ms; negative disables batching).
	// Requests carrying debug injections are never batched.
	BatchMaxWait time.Duration
	// BatchMaxSize flushes a batch early once this many requests have
	// accumulated (default 16).
	BatchMaxSize int

	// CampaignWindow bounds how many campaign units one /v1/sweep request
	// may have in flight at once (default 4×workers) — the campaign's
	// private admission window, so a grid cannot monopolize the queue.
	CampaignWindow int

	// StoreBudgetBytes, when positive, is the persistent store's byte
	// budget: a GC cycle runs after every campaign (and on demand via
	// /v1/gc), evicting bypass-class entries before live ones. Zero means
	// no automatic GC.
	StoreBudgetBytes int64

	// CacheDir enables the persistent artifact store; empty keeps the
	// single-flight cache memory-only.
	CacheDir string

	// Degradation thresholds, in percent of queue fullness observed when
	// a request is dequeued: at DegradeExactPct the exact tier is shed, at
	// DegradeCheckPct the check tier too. Defaults 50 and 80.
	DegradeExactPct int
	DegradeCheckPct int

	// MaxSourceBytes caps accepted request bodies (default 1 MiB).
	MaxSourceBytes int

	// ExactStepBudget bounds the exact solver per request (deterministic
	// degradation to prefilter verdicts; default 5e6).
	ExactStepBudget int64

	// Debug honors the inject_panic / inject_sleep_ms request seams used
	// by the load-test harness and CI to prove isolation and drain.
	Debug bool

	// Logf, when non-nil, receives one-line operational messages.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.DrainDeadline <= 0 {
		c.DrainDeadline = 15 * time.Second
	}
	if c.BatchMaxWait == 0 {
		c.BatchMaxWait = 2 * time.Millisecond
	}
	if c.BatchMaxSize <= 0 {
		c.BatchMaxSize = 16
	}
	if c.CampaignWindow <= 0 {
		c.CampaignWindow = 4 * c.Workers
	}
	if c.DegradeExactPct <= 0 {
		c.DegradeExactPct = 50
	}
	if c.DegradeCheckPct <= 0 {
		c.DegradeCheckPct = 80
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.ExactStepBudget <= 0 {
		c.ExactStepBudget = 5_000_000
	}
	return c
}

// reqSet is one distinct request together with every client waiting on
// it: the batcher coalesces identical requests into a single set, and a
// set costs one queue slot and one execution however many clients ride
// on it.
type reqSet struct {
	req     *Request
	enq     time.Time
	ctxs    []context.Context
	waiters []chan *Response // each buffered(1); exactly one send per waiter
}

// task is one unit of queued work: either one or more request sets (a
// singleton from the direct path, a coalesced set, or an artifact-sharing
// group served by batch replay), or a campaign unit (exec != nil).
type task struct {
	sets   []*reqSet
	ctx    context.Context
	cancel context.CancelFunc // non-nil when ctx is a detached merged context
	enq    time.Time

	// Campaign units: exec produces the single response, reply receives
	// it, done releases the campaign's window slot.
	exec  func(*task) *Response
	reply chan *Response
	done  func()
}

// Server is the service instance. Create with New; it is ready (workers
// running) immediately and serves via Handler or ListenAndServe.
type Server struct {
	cfg   Config
	arts  *artifact.Cache
	queue chan *task
	batch *batcher // nil when batching is disabled
	met   *metrics
	seq   atomic.Int64

	draining   atomic.Bool
	handlersWG sync.WaitGroup // in-flight HTTP handlers (guards queue close)
	workersWG  sync.WaitGroup
	shutOnce   sync.Once
	shutErr    error

	mu      sync.Mutex
	httpSrv *http.Server
	ln      net.Listener
}

// New builds the server and starts its worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	var arts *artifact.Cache
	var err error
	if cfg.CacheDir != "" {
		arts, err = artifact.NewDisk(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
	} else {
		arts = artifact.New()
	}
	s := &Server{
		cfg:   cfg,
		arts:  arts,
		queue: make(chan *task, cfg.QueueDepth),
		met:   newMetrics(),
	}
	arts.SetWarnFunc(func(msg string) { s.logf("%s", msg) })
	if cfg.BatchMaxWait > 0 {
		s.batch = newBatcher(s, cfg.BatchMaxWait, cfg.BatchMaxSize)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workersWG.Add(1)
		go s.worker()
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// CacheStats exposes the artifact-cache counters (single-flight dedup,
// disk hits, salvage).
func (s *Server) CacheStats() artifact.Stats { return s.arts.Stats() }

// Snapshot returns the current statistics report.
func (s *Server) Snapshot() *Snapshot {
	return s.met.snapshot(s.arts.Stats(), s.cfg.Workers, len(s.queue), cap(s.queue), s.draining.Load())
}

// GC runs one store GC cycle under budget bytes (0 uses the configured
// StoreBudgetBytes). Exposed for the /v1/gc endpoint and embedders.
func (s *Server) GC(budget int64) (*artifact.GCReport, error) {
	if budget <= 0 {
		budget = s.cfg.StoreBudgetBytes
	}
	if budget <= 0 {
		return nil, fmt.Errorf("no byte budget: configure StoreBudgetBytes or pass one")
	}
	rep, err := s.arts.GC(budget)
	if err != nil {
		return nil, err
	}
	s.met.noteGC(rep)
	return rep, nil
}

// ---- worker pool ----

func (s *Server) worker() {
	defer s.workersWG.Done()
	for t := range s.queue {
		s.serveTask(t)
	}
}

func (s *Server) serveTask(t *task) {
	defer func() {
		if t.cancel != nil {
			t.cancel()
		}
		if t.done != nil {
			t.done()
		}
	}()
	if s.draining.Load() {
		// Queued but never admitted to a worker before drain began:
		// shed, do not start. Running work is unaffected.
		if t.exec != nil {
			resp := s.shedResponse(t)
			s.met.observe(resp)
			t.reply <- resp
			return
		}
		for _, set := range t.sets {
			s.deliverSet(set, s.shedResponse(t))
		}
		return
	}
	if t.exec != nil {
		resp := t.exec(t)
		s.met.observe(resp)
		t.reply <- resp
		return
	}
	if len(t.sets) == 1 {
		s.deliverSet(t.sets[0], s.process(t))
		return
	}
	resps := s.processGroup(t)
	for i, set := range t.sets {
		s.deliverSet(set, resps[i])
	}
}

func (s *Server) shedResponse(t *task) *Response {
	resp := (&Response{}).fail(http.StatusServiceUnavailable, KindShed, "",
		"server drained before the request was admitted")
	resp.Timing.QueueNS = time.Since(t.enq).Nanoseconds() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
	resp.Timing.TotalNS = resp.Timing.QueueNS
	return resp
}

// deliverSet fans one response out to every client of a set: the first
// waiter gets resp itself, followers get copies marked Deduped (they
// rode on the leader's execution). One metrics observation per delivered
// response keeps the stats honest about client-visible traffic.
func (s *Server) deliverSet(set *reqSet, resp *Response) {
	for i, ch := range set.waiters {
		r := resp
		if i > 0 {
			cp := *resp
			cp.Deduped = true
			r = &cp
		}
		s.met.observe(r)
		ch <- r
	}
}

// process runs one admitted request through the tier pipeline.
func (s *Server) process(t *task) *Response {
	resp := &Response{ID: fmt.Sprintf("r%06d", s.seq.Add(1)), Status: http.StatusOK}
	resp.Timing.QueueNS = time.Since(t.enq).Nanoseconds() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
	started := time.Now()                                 //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
	defer func() {
		resp.Timing.TotalNS = resp.Timing.QueueNS + time.Since(started).Nanoseconds() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
	}()

	rq := t.sets[0].req
	want, err := wantSet(rq.Want)
	if err != nil {
		return resp.fail(http.StatusBadRequest, KindRequest, "request", err.Error())
	}
	if t.ctx.Err() != nil {
		return resp.fail(http.StatusGatewayTimeout, KindTimeout, "queue",
			"deadline expired while queued")
	}

	// Debug-only fault seams.
	if rq.InjectSleepMS > 0 || rq.InjectPanic != "" {
		if !s.cfg.Debug {
			return resp.fail(http.StatusBadRequest, KindRequest, "request",
				"debug injections require a server started with Debug")
		}
		if rq.InjectSleepMS > 0 {
			select {
			case <-time.After(time.Duration(rq.InjectSleepMS) * time.Millisecond):
			case <-t.ctx.Done():
				return resp.fail(http.StatusGatewayTimeout, KindTimeout, "debug-sleep",
					"deadline expired during injected sleep")
			}
		}
	}

	// Degradation decision, from queue pressure at dequeue time.
	load := 100 * len(s.queue) / cap(s.queue)
	if want[TierExact] && load >= s.cfg.DegradeExactPct {
		delete(want, TierExact)
		resp.Degraded = append(resp.Degraded, TierExact)
	}
	if want[TierCheck] && load >= s.cfg.DegradeCheckPct {
		delete(want, TierCheck)
		resp.Degraded = append(resp.Degraded, TierCheck)
	}

	phase, err := s.runTiers(t, want, resp)
	if err != nil {
		return s.classify(resp, phase, err)
	}
	return resp
}

// processGroup serves a group task: several distinct requests for the
// same artifact and execution identity, wanting only compile/simulate
// tiers (the batcher's groupKey guarantees both). One shared compile,
// then one RunBatch — the VM executes at most once and the remaining
// geometries replay the encoded trace. Each set still gets its own
// response (its own tiers, its own assembly flag, its own error if its
// geometry is invalid — though groupKey pre-validated, so that is
// defensive).
func (s *Server) processGroup(t *task) []*Response {
	resps := make([]*Response, len(t.sets))
	queueNS := time.Since(t.enq).Nanoseconds() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
	started := time.Now()                      //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
	for i := range resps {
		resps[i] = &Response{ID: fmt.Sprintf("r%06d", s.seq.Add(1)), Status: http.StatusOK}
		resps[i].Timing.QueueNS = queueNS
	}
	defer func() {
		total := queueNS + time.Since(started).Nanoseconds() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
		for i := range resps {
			resps[i].Timing.TotalNS = total
		}
	}()
	failAll := func(phase string, err error) []*Response {
		for i := range resps {
			if resps[i].ErrorKind == "" && resps[i].Simulate == nil && resps[i].Compile == nil {
				s.classify(resps[i], phase, err)
			}
		}
		return resps
	}
	if t.ctx.Err() != nil {
		return failAll("queue", &vm.CancelError{})
	}
	s.met.noteGrouped(len(t.sets))

	lead := t.sets[0].req
	ccfg, err := lead.coreConfig()
	if err != nil {
		return failAll("request", err)
	}

	var art *artifact.Artifact
	var shared bool
	phase, err := func() (phase string, err error) {
		phase = "compile"
		defer ice.GuardPhase(&phase, &err)
		tic := time.Now() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
		art, shared, err = s.arts.BuildShared(lead.Source, ccfg)
		compileNS := time.Since(tic).Nanoseconds() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
		for i := range resps {
			resps[i].Timing.CompileNS = compileNS
		}
		return phase, err
	}()
	if err != nil {
		return failAll(phase, err)
	}

	// Per-set compile results; collect the simulate configurations.
	var cfgs []vm.Config
	var simIdx []int
	for i, set := range t.sets {
		rq := set.req
		want, werr := wantSet(rq.Want)
		if werr != nil {
			s.classify(resps[i], "request", werr)
			continue
		}
		resps[i].Deduped = shared || i > 0
		if want[TierCompile] {
			cr := &CompileResult{Key: art.Key.String(), Static: art.Static}
			if rq.WantAssembly {
				cr.Assembly = art.Prog.Save()
			}
			resps[i].Compile = cr
		}
		if want[TierSimulate] {
			cacheCfg, cerr := rq.cacheConfig(ccfg.Mode)
			if cerr != nil {
				s.classify(resps[i], "request", cerr)
				resps[i].Compile = nil
				continue
			}
			cfgs = append(cfgs, vm.Config{MaxSteps: rq.MaxSteps, Cache: cacheCfg, Done: t.ctx.Done()})
			simIdx = append(simIdx, i)
		}
	}
	if len(cfgs) == 0 {
		return resps
	}

	var results []*vm.Result
	phase, err = func() (phase string, err error) {
		phase = "simulate"
		defer ice.GuardPhase(&phase, &err)
		tic := time.Now() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
		results, err = s.arts.RunBatch(art, cfgs)
		simNS := time.Since(tic).Nanoseconds() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
		for _, i := range simIdx {
			resps[i].Timing.SimNS = simNS
		}
		return phase, err
	}()
	if err != nil {
		// The batch shares one execution; its error is every simulate
		// member's error (compile-only members keep their results).
		for _, i := range simIdx {
			resps[i].Compile = nil
			s.classify(resps[i], phase, err)
		}
		return resps
	}
	for j, i := range simIdx {
		res := results[j]
		resps[i].Simulate = &SimResult{
			Output:       res.Output,
			Instructions: res.Instructions,
			Loads:        res.Loads,
			Stores:       res.Stores,
			Cache:        res.CacheStats,
		}
	}
	return resps
}

// runTiers executes the requested tiers in order. Any internal panic is
// recovered by the ice guard and attributed to the phase that was running.
func (s *Server) runTiers(t *task, want map[string]bool, resp *Response) (phase string, err error) {
	phase = "request"
	defer ice.GuardPhase(&phase, &err)

	rq := t.sets[0].req
	if s.cfg.Debug && rq.InjectPanic != "" {
		phase = rq.InjectPanic
		panic(fmt.Sprintf("injected panic in %q (debug)", rq.InjectPanic)) //unilint:ok panicguard deliberate fault injection (debug mode) exercised by serve-smoke; the per-request guard recovers it
	}

	ccfg, err := rq.coreConfig()
	if err != nil {
		return phase, err
	}
	cacheCfg, err := rq.cacheConfig(ccfg.Mode)
	if err != nil {
		return phase, err
	}

	phase = "compile"
	tic := time.Now() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
	art, shared, err := s.arts.BuildShared(rq.Source, ccfg)
	if err == nil && art.Comp == nil && (want[TierCheck] || want[TierExact]) {
		art, err = s.arts.BuildIR(rq.Source, ccfg)
	}
	resp.Timing.CompileNS = time.Since(tic).Nanoseconds() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
	if err != nil {
		return phase, err
	}
	resp.Deduped = shared
	if want[TierCompile] {
		cr := &CompileResult{Key: art.Key.String(), Static: art.Static}
		if rq.WantAssembly {
			cr.Assembly = art.Prog.Save()
		}
		resp.Compile = cr
	}

	if want[TierSimulate] {
		phase = "simulate"
		tic = time.Now() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
		res, rerr := s.arts.Run(art, vm.Config{
			MaxSteps: rq.MaxSteps,
			Cache:    cacheCfg,
			Done:     t.ctx.Done(),
		})
		resp.Timing.SimNS = time.Since(tic).Nanoseconds() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
		if rerr != nil {
			return phase, rerr
		}
		resp.Simulate = &SimResult{
			Output:       res.Output,
			Instructions: res.Instructions,
			Loads:        res.Loads,
			Stores:       res.Stores,
			Cache:        res.CacheStats,
		}
	}

	copt := check.Options{Unified: ccfg.Mode == core.Unified, Done: t.ctx.Done()}

	if want[TierCheck] {
		phase = "check"
		tic = time.Now() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
		vs := check.Structural(art.Comp.Prog, copt)
		vs = append(vs, check.DeadMarking(art.Comp.Prog, copt)...)
		vs = append(vs, check.Machine(art.Prog, copt)...)
		rep, aerr := check.AnalyzeCache(art.Comp.Prog, cacheCfg, copt)
		resp.Timing.CheckNS = time.Since(tic).Nanoseconds() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
		if aerr != nil {
			return phase, aerr
		}
		cr := &CheckResult{Violations: len(vs), CacheLine: rep.Summary()}
		for i, v := range vs {
			if i == 8 {
				break
			}
			cr.Messages = append(cr.Messages, v.String())
		}
		resp.Check = cr
	}

	if want[TierExact] {
		phase = "exact"
		tic = time.Now() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
		rep, xerr := exact.AnalyzeWith(art.Comp.Prog, cacheCfg, copt,
			exact.Options{StepBudget: s.cfg.ExactStepBudget})
		resp.Timing.ExactNS = time.Since(tic).Nanoseconds() //unilint:ok wallclock Response.Timing latency metric; informational, excluded from dedup keys and artifacts
		if xerr != nil {
			return phase, xerr
		}
		resp.Exact = &ExactResult{
			Total: rep.Total, Bypassed: rep.Bypassed,
			PreHit: rep.PreHit, PreMiss: rep.PreMiss,
			ExactHit: rep.ExactHit, ExactMiss: rep.ExactMiss,
			Irreducible: rep.Irreducible,
			Solver:      rep.Solver, Steps: rep.Steps, Exhausted: rep.Exhausted,
		}
	}
	return phase, nil
}

// classify maps a tier error onto the response's structured error shape.
func (s *Server) classify(resp *Response, phase string, err error) *Response {
	var ie *ice.Error
	var cancel *vm.CancelError
	var analysisCancel *check.CanceledError
	var budget *vm.BudgetError
	switch {
	case errors.As(err, &ie):
		s.logf("panic isolated in phase %s: %v", ie.Phase, ie.Panic)
		return resp.fail(http.StatusInternalServerError, KindPanic, ie.Phase,
			fmt.Sprintf("internal error in %s (daemon alive): %v", ie.Phase, ie.Panic))
	case errors.As(err, &cancel):
		return resp.fail(http.StatusGatewayTimeout, KindTimeout, phase, err.Error())
	case errors.As(err, &analysisCancel):
		return resp.fail(http.StatusGatewayTimeout, KindTimeout, analysisCancel.Phase, err.Error())
	case errors.As(err, &budget):
		return resp.fail(http.StatusUnprocessableEntity, KindBudget, phase, err.Error())
	case errors.Is(err, fs.ErrPermission):
		return resp.fail(http.StatusInternalServerError, KindInternal, phase, err.Error())
	case phase == "request":
		return resp.fail(http.StatusBadRequest, KindRequest, phase, err.Error())
	case phase == "compile":
		return resp.fail(http.StatusBadRequest, KindCompile, phase, err.Error())
	default:
		// Program-level runtime faults (division by zero, address out of
		// range): the service worked; the program did not.
		return resp.fail(http.StatusUnprocessableEntity, KindRuntime, phase, err.Error())
	}
}

// ---- HTTP front end ----

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	eval := func(defWant ...string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			s.handleEval(w, r, defWant)
		}
	}
	mux.HandleFunc("POST /v1/eval", eval(TierCompile, TierSimulate))
	mux.HandleFunc("POST /v1/compile", eval(TierCompile))
	mux.HandleFunc("POST /v1/simulate", eval(TierSimulate))
	mux.HandleFunc("POST /v1/check", eval(TierCheck))
	mux.HandleFunc("POST /v1/exact", eval(TierExact))
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/gc", s.handleGC)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request, defWant []string) {
	// Register before the draining check: Shutdown closes the queue only
	// after every registered handler finished, and after draining flips no
	// handler ever enqueues — together that makes the close race-free.
	s.handlersWG.Add(1)
	defer s.handlersWG.Done()

	if s.draining.Load() {
		s.reject(w, (&Response{}).fail(http.StatusServiceUnavailable, KindDraining, "",
			"server is draining"))
		return
	}

	body := http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxSourceBytes))
	var req Request
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.reject(w, (&Response{}).fail(http.StatusRequestEntityTooLarge, KindTooLarge, "",
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxSourceBytes)))
			return
		}
		s.reject(w, (&Response{}).fail(http.StatusBadRequest, KindRequest, "",
			"bad request JSON: "+err.Error()))
		return
	}
	if len(req.Want) == 0 {
		req.Want = defWant
	}

	d := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		d = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()

	reply := make(chan *Response, 1)
	enq := time.Now() //unilint:ok wallclock queue-wait timestamp for the QueueNS latency metric

	if s.batch != nil {
		if key, ok := req.batchKey(); ok {
			s.batch.submit(key, &req, ctx, enq, reply)
			writeJSON(w, <-reply)
			return
		}
	}

	t := &task{
		sets: []*reqSet{{req: &req, enq: enq,
			ctxs: []context.Context{ctx}, waiters: []chan *Response{reply}}},
		ctx: ctx, enq: enq,
	}
	select {
	case s.queue <- t:
	default:
		s.reject(w, (&Response{}).fail(http.StatusTooManyRequests, KindOverload, "",
			"admission queue full"))
		return
	}
	writeJSON(w, <-reply)
}

// reject records and writes an admission-path response (no worker, no
// latency observation — these are O(µs) refusals, not served requests).
func (s *Server) reject(w http.ResponseWriter, resp *Response) {
	s.met.mu.Lock()
	s.met.outcomes[resp.outcome()]++
	s.met.mu.Unlock()
	writeJSON(w, resp)
}

// rejectSet delivers an admission-path refusal to every waiter of a set
// (the batcher's overload and drain paths).
func (s *Server) rejectSet(set *reqSet, resp *Response) {
	for i, ch := range set.waiters {
		r := resp
		if i > 0 {
			cp := *resp
			r = &cp
		}
		s.met.mu.Lock()
		s.met.outcomes[r.outcome()]++
		s.met.mu.Unlock()
		ch <- r
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}

func writeJSON(w http.ResponseWriter, resp *Response) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.Status)
	json.NewEncoder(w).Encode(resp)
}

// ---- lifecycle ----

// ListenAndServe binds addr and serves until ctx is canceled, then drains
// under the configured drain deadline. The bound address is available via
// Addr once this returns from the bind (use AddrReady for coordination).
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.Handler()}
	srv := s.httpSrv
	s.mu.Unlock()
	s.logf("listening on %s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainDeadline)
		defer cancel()
		return s.Shutdown(dctx)
	case err := <-errc:
		return err
	}
}

// AwaitAddr blocks until the listener is bound, returning its address —
// nil if ctx is canceled first. It exists so launchers using ":0" can
// publish the chosen port (unicached -addr-file).
func (s *Server) AwaitAddr(ctx context.Context) net.Addr {
	for {
		if a := s.Addr(); a != nil {
			return a
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Addr returns the bound listener address, nil before ListenAndServe.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server: refuse new admissions (503), shed pending
// batch members (503), let running requests complete, shed still-queued
// ones (503), close the listener, stop the workers. Safe to call once;
// later calls return the first result. The context bounds the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		s.draining.Store(true)
		s.logf("draining: refusing new admissions")

		// Stop the batcher first: members still waiting in a batch window
		// get their shed reply immediately, which releases their handlers.
		if s.batch != nil {
			s.batch.close()
		}

		s.mu.Lock()
		srv := s.httpSrv
		s.mu.Unlock()
		if srv != nil {
			if err := srv.Shutdown(ctx); err != nil {
				s.shutErr = fmt.Errorf("drain deadline: %w", err)
			}
		}

		// Wait for every registered handler (each is waiting on a worker
		// reply; workers shed queued work instantly once draining, so this
		// converges at the pace of the requests already running).
		handlersDone := make(chan struct{})
		go func() { s.handlersWG.Wait(); close(handlersDone) }()
		select {
		case <-handlersDone:
		case <-ctx.Done():
			s.shutErr = fmt.Errorf("drain deadline: %w", ctx.Err())
			return // leave workers running; the process is exiting anyway
		}

		close(s.queue)
		s.workersWG.Wait()
		s.logf("drained")
	})
	return s.shutErr
}
