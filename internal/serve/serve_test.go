package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// quickSource finishes in a few hundred instructions.
const quickSource = `
int a[16];
void main() {
    int i;
    int s;
    s = 0;
    for (i = 0; i < 16; i++) {
        a[i] = i * 2;
    }
    for (i = 0; i < 16; i++) {
        s = s + a[i];
    }
    print(s);
}`

// spinSource runs hundreds of millions of instructions: only a deadline
// (or budget) stops it in test-relevant time.
const spinSource = `
void main() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 100000000; i++) {
        acc = acc + i;
    }
    print(acc);
}`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// post sends req to path and decodes the Response body.
func post(t *testing.T, base, path string, req *Request) (int, *Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer hr.Body.Close()
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("decode %s response: %v", path, err)
	}
	return hr.StatusCode, &resp
}

// TestEvalEndToEnd: the default eval runs compile+simulate and the answer
// matches the program.
func TestEvalEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, resp := post(t, ts.URL, "/v1/eval", &Request{Source: quickSource})
	if code != http.StatusOK {
		t.Fatalf("status %d, error %q", code, resp.Error)
	}
	if resp.Compile == nil || resp.Simulate == nil {
		t.Fatalf("missing tiers in %+v", resp)
	}
	if want := "240\n"; resp.Simulate.Output != want {
		t.Errorf("output %q, want %q", resp.Simulate.Output, want)
	}
	if resp.Simulate.Instructions == 0 || resp.Compile.Key == "" {
		t.Errorf("degenerate result: %+v", resp)
	}
}

// TestDeadlineStructuredTimeout (satellite 3): a simulate that cannot
// finish under its deadline returns a structured 504 close to the
// deadline, not a hung worker or a killed daemon.
func TestDeadlineStructuredTimeout(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const deadline = 150 * time.Millisecond
	start := time.Now()
	code, resp := post(t, ts.URL, "/v1/simulate", &Request{
		Source:     spinSource,
		DeadlineMS: deadline.Milliseconds(),
	})
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout || resp.ErrorKind != KindTimeout {
		t.Fatalf("status %d kind %q, want 504 %q (err %q)", code, resp.ErrorKind, KindTimeout, resp.Error)
	}
	if resp.Phase != "simulate" {
		t.Errorf("phase %q, want simulate", resp.Phase)
	}
	// Tolerance: the cancel poll runs every 4096 instructions, so the
	// timeout must land promptly after the deadline — far from the
	// multi-second full run.
	if elapsed < deadline {
		t.Errorf("timed out after %v, before the %v deadline", elapsed, deadline)
	}
	if elapsed > deadline+2*time.Second {
		t.Errorf("timeout took %v, not prompt for a %v deadline", elapsed, deadline)
	}

	// The worker survived: the next request on the same single worker works.
	if code, resp := post(t, ts.URL, "/v1/eval", &Request{Source: quickSource}); code != http.StatusOK {
		t.Fatalf("worker unusable after timeout: %d %q", code, resp.Error)
	}
}

// TestPanicIsolation: an injected panic comes back as a 500 tagged with
// its phase, and the daemon keeps serving.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Debug: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, resp := post(t, ts.URL, "/v1/eval", &Request{Source: quickSource, InjectPanic: "regalloc"})
	if code != http.StatusInternalServerError || resp.ErrorKind != KindPanic {
		t.Fatalf("status %d kind %q, want 500 %q", code, resp.ErrorKind, KindPanic)
	}
	if resp.Phase != "regalloc" {
		t.Errorf("phase %q, want regalloc", resp.Phase)
	}
	if code, resp := post(t, ts.URL, "/v1/eval", &Request{Source: quickSource}); code != http.StatusOK {
		t.Fatalf("daemon did not survive the panic: %d %q", code, resp.Error)
	}
	if snap := s.Snapshot(); snap.Panics != 1 {
		t.Errorf("Panics = %d, want 1", snap.Panics)
	}
}

// TestInjectionRequiresDebug: the fault seams are rejected outside Debug.
func TestInjectionRequiresDebug(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, resp := post(t, ts.URL, "/v1/eval", &Request{Source: quickSource, InjectPanic: "x"})
	if code != http.StatusBadRequest || resp.ErrorKind != KindRequest {
		t.Fatalf("status %d kind %q, want 400 %q", code, resp.ErrorKind, KindRequest)
	}
}

// TestCompileErrorIs400: a broken program is the client's fault, reported
// with the compiler's message.
func TestCompileErrorIs400(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, resp := post(t, ts.URL, "/v1/compile", &Request{Source: "void main( {"})
	if code != http.StatusBadRequest || resp.ErrorKind != KindCompile {
		t.Fatalf("status %d kind %q, want 400 %q", code, resp.ErrorKind, KindCompile)
	}
	if resp.Error == "" {
		t.Error("compile error lost its message")
	}
}

// TestBudgetIs422: step-budget exhaustion is a structured, deterministic
// client-visible outcome (the oversized-program case of the load test).
func TestBudgetIs422(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, resp := post(t, ts.URL, "/v1/simulate", &Request{Source: spinSource, MaxSteps: 10_000})
	if code != http.StatusUnprocessableEntity || resp.ErrorKind != KindBudget {
		t.Fatalf("status %d kind %q, want 422 %q", code, resp.ErrorKind, KindBudget)
	}
}

// TestServerSingleFlight: identical sources dedupe through the artifact
// cache and the response says so.
func TestServerSingleFlight(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, resp := post(t, ts.URL, "/v1/eval", &Request{Source: quickSource}); code != 200 {
		t.Fatalf("first: %d %q", code, resp.Error)
	}
	_, resp := post(t, ts.URL, "/v1/eval", &Request{Source: quickSource})
	if !resp.Deduped {
		t.Error("second identical request was not deduplicated")
	}
	if snap := s.Snapshot(); snap.Deduped == 0 {
		t.Error("snapshot dedup counter still zero")
	}
}

// TestDegradationTiers: under queue pressure the exact tier is shed while
// simulate (and, below the check threshold, check) still answer.
func TestDegradationTiers(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4, Debug: true,
		DegradeExactPct: 50, DegradeCheckPct: 80,
		// The test stages exact queue occupancy; batching would coalesce
		// the fillers and dissolve the pressure it is measuring.
		BatchMaxWait: -1,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	// Occupy the single worker long enough to build queue pressure.
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, ts.URL, "/v1/eval", &Request{Source: quickSource, InjectSleepMS: 400})
	}()
	time.Sleep(100 * time.Millisecond) // the occupier is now in the worker

	// Queue: the probe first, then three fillers behind it. When the
	// worker frees, the probe is dequeued with 3/4 of the queue full: 75%
	// sheds exact (>=50) but keeps check (<80).
	probeDone := make(chan *Response, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, resp := post(t, ts.URL, "/v1/eval", &Request{
			Source: quickSource,
			Want:   []string{TierSimulate, TierCheck, TierExact},
		})
		probeDone <- resp
	}()
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(t, ts.URL, "/v1/eval", &Request{Source: quickSource, Want: []string{TierSimulate}})
		}()
	}

	resp := <-probeDone
	wg.Wait()
	if resp.Simulate == nil {
		t.Fatalf("simulate was shed — it must never be: %+v", resp)
	}
	if resp.Check == nil {
		t.Errorf("check shed below its threshold: degraded=%v", resp.Degraded)
	}
	if resp.Exact != nil || len(resp.Degraded) != 1 || resp.Degraded[0] != TierExact {
		t.Errorf("want exactly the exact tier shed, got exact=%v degraded=%v", resp.Exact, resp.Degraded)
	}
}

// TestOverloadSheds429: a full admission queue refuses immediately.
func TestOverloadSheds429(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Debug: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // one into the worker, one into the queue
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(t, ts.URL, "/v1/eval", &Request{Source: quickSource, InjectSleepMS: 300})
		}()
		time.Sleep(75 * time.Millisecond)
	}
	code, resp := post(t, ts.URL, "/v1/eval", &Request{Source: quickSource})
	wg.Wait()
	if code != http.StatusTooManyRequests || resp.ErrorKind != KindOverload {
		t.Fatalf("status %d kind %q, want 429 %q", code, resp.ErrorKind, KindOverload)
	}
}

// TestGracefulShutdown (satellite 4): on drain, in-flight work completes,
// queued-but-unadmitted work is shed with 503, new admissions get 503,
// and the listener closes.
func TestGracefulShutdown(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 8, Debug: true, DrainDeadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.ListenAndServe(ctx, "127.0.0.1:0") }()
	var addr net.Addr
	for i := 0; i < 100 && addr == nil; i++ {
		time.Sleep(10 * time.Millisecond)
		addr = s.Addr()
	}
	if addr == nil {
		t.Fatal("server never bound")
	}
	base := "http://" + addr.String()

	type outcome struct {
		code int
		resp *Response
	}
	// A occupies the worker; B and C wait in the queue.
	results := make([]chan outcome, 3)
	for i := range results {
		results[i] = make(chan outcome, 1)
	}
	send := func(i int, sleepMS int64) {
		go func() {
			code, resp := post(t, base, "/v1/eval", &Request{Source: quickSource, InjectSleepMS: sleepMS})
			results[i] <- outcome{code, resp}
		}()
	}
	send(0, 400)
	time.Sleep(100 * time.Millisecond)
	send(1, 0)
	send(2, 0)
	time.Sleep(100 * time.Millisecond)

	cancel() // SIGTERM equivalent: drain
	a := <-results[0]
	if a.code != http.StatusOK {
		t.Errorf("in-flight request did not complete cleanly: %d %q", a.code, a.resp.Error)
	}
	for i := 1; i <= 2; i++ {
		r := <-results[i]
		if r.code != http.StatusServiceUnavailable || r.resp.ErrorKind != KindShed {
			t.Errorf("queued request %d: status %d kind %q, want 503 %q", i, r.code, r.resp.ErrorKind, KindShed)
		}
	}
	if err := <-served; err != nil {
		t.Errorf("drain exceeded its deadline: %v", err)
	}
	// Listener is closed: new connections are refused.
	if _, err := net.DialTimeout("tcp", addr.String(), time.Second); err == nil {
		t.Error("listener still accepting after drain")
	}
}

// TestDrainingRefusesNewAdmissions: a request arriving mid-drain gets 503
// KindDraining at the front door.
func TestDrainingRefusesNewAdmissions(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancelDrain := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelDrain()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	code, resp := post(t, ts.URL, "/v1/eval", &Request{Source: quickSource})
	if code != http.StatusServiceUnavailable || resp.ErrorKind != KindDraining {
		t.Fatalf("status %d kind %q, want 503 %q", code, resp.ErrorKind, KindDraining)
	}
}

// TestCheckAndExactTiers: the analysis tiers answer with real content on a
// healthy server.
func TestCheckAndExactTiers(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, resp := post(t, ts.URL, "/v1/check", &Request{Source: quickSource})
	if code != http.StatusOK || resp.Check == nil {
		t.Fatalf("check tier: %d %+v", code, resp)
	}
	if resp.Check.Violations != 0 {
		t.Errorf("compiler output fails its own verifier: %v", resp.Check.Messages)
	}
	code, resp = post(t, ts.URL, "/v1/exact", &Request{Source: quickSource})
	if code != http.StatusOK || resp.Exact == nil {
		t.Fatalf("exact tier: %d %+v", code, resp)
	}
	if resp.Exact.Total == 0 {
		t.Error("exact analysis classified zero sites")
	}
}

// TestStatsEndpoint: the snapshot has the pinned schema and coherent
// counters after traffic.
func TestStatsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 3; i++ {
		post(t, ts.URL, "/v1/eval", &Request{Source: quickSource})
	}
	hr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(hr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != StatsSchema {
		t.Errorf("schema %q, want %q", snap.Schema, StatsSchema)
	}
	if snap.Requests != 3 || snap.Outcomes["ok"] != 3 {
		t.Errorf("requests=%d outcomes=%v, want 3 ok", snap.Requests, snap.Outcomes)
	}
	if snap.Deduped != 2 {
		t.Errorf("deduped=%d, want 2", snap.Deduped)
	}
	if snap.P50NS <= 0 || snap.MeanNS <= 0 {
		t.Errorf("degenerate latency stats: %+v", snap)
	}
}

// TestHistogramQuantiles: bucket math on a known population.
func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000) // 1µs .. 100µs
	}
	if h.Count != 100 {
		t.Fatalf("count %d", h.Count)
	}
	p50 := h.Quantile(0.50)
	if p50 < 32<<10 || p50 > 128<<10 {
		t.Errorf("p50 = %dns, outside the plausible bucket range", p50)
	}
	if h.Quantile(1.0) < p50 {
		t.Error("quantiles not monotone")
	}
	var total int64
	for _, c := range h.Counts {
		total += c
	}
	if total != h.Count {
		t.Errorf("bucket counts sum to %d, want %d", total, h.Count)
	}
}

// TestDeadlineClamp: an absurd client deadline is clamped to the server
// maximum rather than honored.
func TestDeadlineClamp(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxDeadline: 200 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	start := time.Now()
	code, _ := post(t, ts.URL, "/v1/simulate", &Request{Source: spinSource, DeadlineMS: 3_600_000})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("clamp ignored: took %v", elapsed)
	}
}

func ExampleServer() {
	s, _ := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(Request{Source: `void main() { print(7); }`})
	hr, _ := http.Post(ts.URL+"/v1/eval", "application/json", bytes.NewReader(body))
	var resp Response
	json.NewDecoder(hr.Body).Decode(&resp)
	fmt.Print(resp.Simulate.Output)
	s.Shutdown(context.Background())
	// Output: 7
}
