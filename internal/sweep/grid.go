package sweep

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
)

// Compiler-config labels accepted by Grid.Compilers.
const (
	CompilerBaseline   = "baseline"   // scalars in frame memory (the paper's reference mix)
	CompilerOptimizing = "optimizing" // scalars in registers (our full pipeline)
)

// Management-mode labels accepted by Grid.Modes.
const (
	ModeUnified      = "unified"
	ModeConventional = "conventional"
)

// Grid is a sweep specification: the cross product of every listed
// dimension is the set of work units. The zero value is invalid; use
// PaperGrid or fill every slice.
type Grid struct {
	Benchmarks []string `json:"benchmarks"`
	Compilers  []string `json:"compilers"`
	Modes      []string `json:"modes"`
	Sets       []int    `json:"sets"`
	Ways       []int    `json:"ways"`
	LineWords  []int    `json:"line_words"`
	Policies   []string `json:"policies"`
}

// PaperGrid is the full evaluation grid of the perf baseline: all six
// benchmarks under the baseline compiler, both management modes, twelve
// geometries bracketing the paper's 64-line cache, and the three
// executable replacement policies — 432 units.
func PaperGrid() Grid {
	var names []string
	for _, b := range bench.All() {
		names = append(names, b.Name)
	}
	return Grid{
		Benchmarks: names,
		Compilers:  []string{CompilerBaseline},
		Modes:      []string{ModeConventional, ModeUnified},
		Sets:       []int{8, 16, 32, 64},
		Ways:       []int{1, 2, 4},
		LineWords:  []int{1},
		Policies:   []string{"lru", "fifo", "random"},
	}
}

// Size is the number of work units the grid expands to.
func (g Grid) Size() int {
	return len(g.Benchmarks) * len(g.Compilers) * len(g.Modes) *
		len(g.Sets) * len(g.Ways) * len(g.LineWords) * len(g.Policies)
}

// Validate checks every dimension value. MIN is rejected: it needs future
// knowledge only the trace-driven simulator has, and sweep units execute.
func (g Grid) Validate() error {
	if g.Size() == 0 {
		return fmt.Errorf("sweep: empty grid (every dimension needs at least one value)")
	}
	for _, name := range g.Benchmarks {
		if bench.Get(name) == nil {
			return fmt.Errorf("sweep: unknown benchmark %q", name)
		}
	}
	for _, cc := range g.Compilers {
		if cc != CompilerBaseline && cc != CompilerOptimizing {
			return fmt.Errorf("sweep: unknown compiler config %q (want %s or %s)",
				cc, CompilerBaseline, CompilerOptimizing)
		}
	}
	for _, m := range g.Modes {
		if m != ModeUnified && m != ModeConventional {
			return fmt.Errorf("sweep: unknown mode %q (want %s or %s)", m, ModeUnified, ModeConventional)
		}
	}
	for _, p := range g.Policies {
		pol, err := cache.ParsePolicy(p)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if pol == cache.MIN {
			return fmt.Errorf("sweep: policy min needs the trace-driven simulator; sweep units execute")
		}
	}
	for _, u := range g.units(nil) {
		if err := u.CacheConfig().Validate(); err != nil {
			return fmt.Errorf("sweep: unit %s: %w", u.Key(), err)
		}
	}
	return nil
}

// Unit is one work item: a fully specified configuration to compile
// (artifact-cached) and simulate.
type Unit struct {
	Index     int // position in canonical order
	Bench     bench.Benchmark
	Compiler  string
	Mode      string
	Sets      int
	Ways      int
	LineWords int
	Policy    cache.Policy
}

// Units expands the grid in canonical order: benchmarks, then compilers,
// modes, sets, ways, line words, policies — the nesting of the field
// declarations. The order is the contract that makes merged output
// independent of scheduling.
func (g Grid) Units() ([]Unit, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g.units(nil), nil
}

func (g Grid) units(into []Unit) []Unit {
	for _, name := range g.Benchmarks {
		b := bench.Get(name)
		if b == nil {
			b = &bench.Benchmark{Name: name}
		}
		for _, cc := range g.Compilers {
			for _, mode := range g.Modes {
				for _, sets := range g.Sets {
					for _, ways := range g.Ways {
						for _, lw := range g.LineWords {
							for _, ps := range g.Policies {
								pol, _ := cache.ParsePolicy(ps)
								into = append(into, Unit{
									Index: len(into), Bench: *b, Compiler: cc, Mode: mode,
									Sets: sets, Ways: ways, LineWords: lw, Policy: pol,
								})
							}
						}
					}
				}
			}
		}
	}
	return into
}

// CoreConfig is the compiler configuration of the unit; units sharing it
// share one artifact-cache compilation.
func (u Unit) CoreConfig() core.Config {
	mode := core.Unified
	if u.Mode == ModeConventional {
		mode = core.Conventional
	}
	return core.Config{Mode: mode, StackScalars: u.Compiler == CompilerBaseline, Check: true}
}

// CacheConfig is the simulated hardware of the unit. Unified mode honors
// bypass and dead-marks by invalidation (the paper's hardware);
// conventional mode ignores both bits.
func (u Unit) CacheConfig() cache.Config {
	cc := cache.Config{Sets: u.Sets, Ways: u.Ways, LineWords: u.LineWords,
		Policy: u.Policy, Seed: 1}
	if u.Mode == ModeUnified {
		cc.Dead = cache.DeadInvalidate
		cc.HonorBypass = true
	}
	return cc
}

// Record returns the unit's record skeleton (identity fields and key, no
// measurements).
func (u Unit) Record() Record {
	return NewRecord(u.Bench.Name, u.Compiler, u.Mode, u.CacheConfig())
}

// Key is the unit's canonical identity, matching the key of the record it
// produces (the resume contract).
func (u Unit) Key() string {
	r := u.Record()
	return r.Key
}
