package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Schema identifies the sweep artifact format. Bump on any change to the
// Record encoding so trajectory tooling can tell generations apart.
const Schema = "unicache-sweep/v1"

// WriteJSON writes the canonical sweep artifact: schema header, the grid,
// the unit count, then one record per line in canonical order. The
// line-per-record layout is what makes truncated files recoverable —
// ReadRecords salvages every complete line — and the encoding contains no
// timestamps, map iterations or float formatting ambiguity, so two sweeps
// of the same grid produce byte-identical files at any worker count.
func WriteJSON(w io.Writer, g Grid, recs []Record) error {
	lines := make([][]byte, len(recs))
	for i, r := range recs {
		b, err := r.MarshalLine()
		if err != nil {
			return err
		}
		lines[i] = b
	}
	return WriteJSONLines(w, g, lines)
}

// WriteJSONLines is WriteJSON over already-marshaled record lines. It is
// the single source of truth for the artifact layout: the remote campaign
// client assembles its artifact from the raw lines the daemon streamed,
// through this writer, so remote and local artifacts agree byte-for-byte
// by construction rather than by re-marshaling.
func WriteJSONLines(w io.Writer, g Grid, lines [][]byte) error {
	gb, err := json.Marshal(g)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "{\n\"schema\": %q,\n\"grid\": %s,\n\"units\": %d,\n\"records\": [\n",
		Schema, gb, len(lines)); err != nil {
		return err
	}
	for i, b := range lines {
		sep := ","
		if i == len(lines)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "%s%s\n", b, sep); err != nil {
			return err
		}
	}
	_, err = fmt.Fprint(w, "]}\n")
	return err
}

// MarshalLine encodes the record as the single JSON line WriteJSON emits
// (without the separator) — the unit of salvage ReadRecords understands.
// Progress streams use it to mirror finished records to a sidecar file.
func (r Record) MarshalLine() ([]byte, error) {
	return json.Marshal(r)
}

// ReadRecords leniently salvages records from a sweep artifact that may be
// truncated or half-written: every line holding one complete record is
// kept (keyed for resume), and headers or a cut-off final line are
// skipped. A line can be valid JSON yet still be damaged — a record cut
// mid-field parses but carries a key its remaining fields do not derive.
// Resuming such a record would silently trust half a measurement, so every
// salvaged record's key is re-derived and mismatches are dropped; the
// returned count tells the caller how many, for a visible warning. A file
// with no salvageable records yields an empty map, which simply resumes
// nothing.
func ReadRecords(r io.Reader) (map[string]Record, int, error) {
	out := make(map[string]Record)
	dropped := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSuffix(strings.TrimSpace(sc.Text()), ",")
		if !strings.HasPrefix(line, `{"key":`) {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue // truncated tail
		}
		want := rec
		want.SetKey()
		if rec.Key == "" || rec.Key != want.Key {
			dropped++
			continue
		}
		out[rec.Key] = rec
	}
	return out, dropped, sc.Err()
}

// Verify strictly parses a complete sweep artifact: schema and unit count
// must match, every record's key must re-derive from its fields, and keys
// must be unique. It returns the record count. CI's sweep-smoke stage uses
// it as the "is this valid JSON with the schema we promised" gate.
func Verify(r io.Reader) (int, error) {
	var doc struct {
		Schema  string   `json:"schema"`
		Grid    Grid     `json:"grid"`
		Units   int      `json:"units"`
		Records []Record `json:"records"`
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("sweep: invalid artifact: %w", err)
	}
	if doc.Schema != Schema {
		return 0, fmt.Errorf("sweep: schema %q, want %q", doc.Schema, Schema)
	}
	if doc.Units != len(doc.Records) {
		return 0, fmt.Errorf("sweep: header says %d units, found %d records", doc.Units, len(doc.Records))
	}
	seen := make(map[string]bool, len(doc.Records))
	for i, rec := range doc.Records {
		want := rec
		want.SetKey()
		if rec.Key != want.Key {
			return 0, fmt.Errorf("sweep: record %d: key %q does not match fields (want %q)", i, rec.Key, want.Key)
		}
		if seen[rec.Key] {
			return 0, fmt.Errorf("sweep: record %d: duplicate key %q", i, rec.Key)
		}
		seen[rec.Key] = true
	}
	return len(doc.Records), nil
}
