// Package sweep is the design-space exploration engine of the repo: it
// expands a grid specification (benchmarks × compiler configs × cache
// geometries × replacement policies × management modes) into work units,
// executes them on a worker pool, and merges the results in canonical
// order so the output is bit-identical regardless of worker count.
//
// The unit of data is the Record: one measured configuration with its
// complete word-exact traffic accounting. Records are the shared data
// model between unisweep (which writes them as the machine-readable
// BENCH_sweep.json perf artifact) and unibench (whose paper tables render
// from Record streams).
package sweep

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
)

// Record is one measured point of the design space: a benchmark compiled
// under one compiler configuration and management mode, simulated on one
// cache geometry and replacement policy.
//
// Wall-clock time is deliberately excluded from the JSON encoding: the
// sweep artifact must be byte-identical across runs and worker counts,
// and wall time is the one quantity that never is.
type Record struct {
	// Key is the canonical identity of the configuration, used for resume
	// matching; Record.SetKey derives it from the fields below.
	Key string `json:"key"`

	Experiment string `json:"experiment,omitempty"` // producing experiment ("" for sweep units)

	Bench     string `json:"bench"`
	Compiler  string `json:"compiler"` // compiler-config label ("baseline", "optimizing", ...)
	Mode      string `json:"mode"`     // "unified" | "conventional"
	Sets      int    `json:"sets"`
	Ways      int    `json:"ways"`
	LineWords int    `json:"line_words"`
	Policy    string `json:"policy"`
	Dead      string `json:"dead"`         // dead-marking mode in effect
	Bypass    bool   `json:"honor_bypass"` // bypass bit honored by the hardware

	// Static classification of the compilation (zero for trace replays
	// that reuse another record's compilation).
	StaticSites     int     `json:"static_sites,omitempty"`
	StaticBypass    int     `json:"static_bypass,omitempty"`
	StaticCached    int     `json:"static_cached,omitempty"`
	StaticBypassPct float64 `json:"static_bypass_pct,omitempty"`
	SpilledWebs     int     `json:"spilled_webs,omitempty"`

	// Exact hit/miss classification of the compilation's reference sites
	// (the precision experiment; zero elsewhere). PreHit/PreMiss count
	// sites the must/may prefilter decided, ExactHit/ExactMiss sites only
	// the exact refinement could decide, Irreducible sites neither could.
	PreHit      int `json:"pre_hit,omitempty"`
	PreMiss     int `json:"pre_miss,omitempty"`
	ExactHit    int `json:"exact_hit,omitempty"`
	ExactMiss   int `json:"exact_miss,omitempty"`
	Irreducible int `json:"irreducible,omitempty"`

	// Exact-solver instrumentation (the scaling experiment; zero
	// elsewhere). Solver names the refinement solver ("antichain" or
	// "powerset") and joins the key so the same program under both solvers
	// yields distinct, resumable units. AnalysisSteps counts state-transfer
	// applications (the deterministic work measure — never wall-clock),
	// AnalysisStates the peak focus-set width, and AnalysisExhausted
	// records that the step budget ran out (remaining sites degraded to
	// the prefilter verdict).
	Solver            string `json:"solver,omitempty"`
	AnalysisSteps     int64  `json:"analysis_steps,omitempty"`
	AnalysisStates    int    `json:"analysis_states,omitempty"`
	AnalysisExhausted bool   `json:"analysis_exhausted,omitempty"`

	// Dynamic counters. Instructions is zero for trace replays (the
	// address stream was recorded by an earlier execution).
	Instructions   int64 `json:"instructions,omitempty"`
	Refs           int64 `json:"refs"`
	CachedRefs     int64 `json:"cached_refs"`
	BypassRefs     int64 `json:"bypass_refs"`
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	Fetches        int64 `json:"fetches"`
	Writebacks     int64 `json:"writebacks"`
	StoreAllocs    int64 `json:"store_allocs"`
	BypassReads    int64 `json:"bypass_reads"`
	BypassWrites   int64 `json:"bypass_writes"`
	DeadMarks      int64 `json:"dead_marks"`
	DeadDiscards   int64 `json:"dead_discards"`
	SingleUseFills int64 `json:"single_use_fills"`
	Evictions      int64 `json:"evictions"`
	DRAMWords      int64 `json:"dram_words"` // Figure 5's cache<->memory word traffic

	MissRatio        float64 `json:"miss_ratio"`
	DynamicBypassPct float64 `json:"dynamic_bypass_pct"`
	DeadOccupancy    float64 `json:"dead_occupancy,omitempty"` // trace replays only

	// WallNS is how long the unit took; json:"-" keeps the artifact
	// deterministic. Progress streams report it instead.
	WallNS int64 `json:"-"`
}

// NewRecord starts a record for one configuration, deriving the hardware
// columns (and the canonical key) from the cache config.
func NewRecord(benchName, compiler, mode string, cc cache.Config) Record {
	r := Record{
		Bench:     benchName,
		Compiler:  compiler,
		Mode:      mode,
		Sets:      cc.Sets,
		Ways:      cc.Ways,
		LineWords: cc.LineWords,
		Policy:    cc.Policy.String(),
		Dead:      cc.Dead.String(),
		Bypass:    cc.HonorBypass,
	}
	r.SetKey()
	return r
}

// SetKey (re)derives the canonical key from the identity fields. The key
// spells out the dead-marking mode and bypass honoring explicitly because
// experiment streams measure variants (bypass-without-dead-marking) that
// the mode label alone cannot distinguish.
func (r *Record) SetKey() {
	hw := "nobypass"
	if r.Bypass {
		hw = "bypass"
	}
	r.Key = fmt.Sprintf("%s/%s/%s/s%d.w%d.l%d/%s/%s,%s",
		r.Bench, r.Compiler, r.Mode, r.Sets, r.Ways, r.LineWords, r.Policy, r.Dead, hw)
	if r.Solver != "" {
		// Solver-differential units measure the same configuration twice;
		// the suffix keeps their keys (and resume identities) apart.
		r.Key += "/" + r.Solver
	}
}

// SetStats fills the dynamic counters from a run's (or replay's) cache
// statistics. In both cache models Hits+Misses == CachedRefs, so the miss
// ratio here equals the 1-HitRatio() the tables historically printed.
func (r *Record) SetStats(st cache.Stats) {
	r.Refs = st.Refs
	r.CachedRefs = st.CachedRefs
	r.BypassRefs = st.BypassRefs
	r.Hits = st.Hits
	r.Misses = st.Misses
	r.Fetches = st.Fetches
	r.Writebacks = st.Writebacks
	r.StoreAllocs = st.StoreAllocs
	r.BypassReads = st.BypassReads
	r.BypassWrites = st.BypassWrites
	r.DeadMarks = st.DeadMarks
	r.DeadDiscards = st.DeadDiscards
	r.SingleUseFills = st.SingleUseFills
	r.Evictions = st.Evictions
	r.DRAMWords = st.MemTrafficWords(r.LineWords)
	if st.CachedRefs > 0 {
		r.MissRatio = float64(st.Misses) / float64(st.CachedRefs)
	}
	if st.Refs > 0 {
		r.DynamicBypassPct = 100 * float64(st.BypassRefs) / float64(st.Refs)
	}
}

// SetStatic attaches the compiler-side site classification.
func (r *Record) SetStatic(s core.StaticStats, spilledWebs int) {
	r.StaticSites = s.Sites
	r.StaticBypass = s.Bypass
	r.StaticCached = s.Cached
	r.StaticBypassPct = s.PercentBypass()
	r.SpilledWebs = spilledWebs
}

// Fills is the number of cache-line allocations (fetches plus fetch-free
// store allocations) — the denominator of reuse and single-use ratios.
func (r Record) Fills() int64 { return r.Fetches + r.StoreAllocs }
