package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/vm"
)

// Runner is the slice of the artifact cache a unit execution needs.
// *artifact.Cache satisfies it directly; *artifact.Session satisfies it
// with a reuse class and GC pinning attached — which is how the serving
// daemon runs campaign units without letting a concurrent GC cycle evict
// the artifacts mid-campaign.
type Runner interface {
	BuildIR(src string, cfg core.Config) (*artifact.Artifact, error)
	Run(art *artifact.Artifact, cfg vm.Config) (*vm.Result, error)
}

// Options controls one engine run.
type Options struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS. Results do not
	// depend on it: records are merged in canonical unit order.
	Workers int

	// Artifacts is the compile/run cache to draw on; nil builds a private
	// one. Sharing a cache across runs (resume, repeated sweeps in one
	// process) skips recompilation.
	Artifacts *artifact.Cache

	// Done maps unit keys to already-measured records (from a previous,
	// possibly truncated, result file). Matching units are not re-run;
	// their records are merged verbatim.
	Done map[string]Record

	// Progress, when non-nil, is called once per finished unit in
	// completion order (not canonical order) with the running completion
	// count. Calls are serialized by the engine.
	Progress func(done, total int, r Record)
}

// Result is a finished sweep.
type Result struct {
	Grid    Grid
	Records []Record // canonical unit order
	Ran     int      // units executed (total - resumed)
	Elapsed time.Duration
}

// Run expands the grid and executes every unit not already in opt.Done on
// a worker pool. The merged record slice is in canonical unit order and
// bit-identical for any worker count: unit execution is deterministic
// (fixed seeds, no shared mutable state) and scheduling only affects
// progress-line order.
func Run(g Grid, opt Options) (*Result, error) {
	units, err := g.Units()
	if err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}
	arts := opt.Artifacts
	if arts == nil {
		arts = artifact.New()
	}

	start := time.Now() //unilint:ok wallclock progress display and Result.Elapsed only; the artifact serializes neither
	recs := make([]Record, len(units))
	errs := make([]error, len(units))
	var (
		mu   sync.Mutex // serializes Progress and the done counter
		done int
		ran  int
	)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				u := units[i]
				var executed bool
				if r, ok := opt.Done[u.Key()]; ok {
					recs[i] = r
				} else {
					recs[i], errs[i] = RunUnit(arts, u, nil)
					executed = true
				}
				mu.Lock()
				done++
				if executed {
					ran++
				}
				if opt.Progress != nil && errs[i] == nil {
					opt.Progress(done, len(units), recs[i])
				}
				mu.Unlock()
			}
		}()
	}
	for i := range units {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: unit %s: %w", units[i].Key(), err)
		}
	}
	return &Result{Grid: g, Records: recs, Ran: ran, Elapsed: time.Since(start)}, nil //unilint:ok wallclock Elapsed stays in memory; WriteJSON emits no timing fields
}

// RunUnit compiles (cached) and simulates one unit, self-checking the
// program output against the benchmark's expected text. The record is a
// pure function of the unit — cancel (optional) and the Runner's caching
// never influence its bytes, which is what makes a remote campaign
// byte-identical to a local sweep. BuildIR rather than Build: a
// disk-restored artifact carries no IR, and the record's static columns
// come from the compilation.
func RunUnit(arts Runner, u Unit, cancel <-chan struct{}) (Record, error) {
	start := time.Now() //unilint:ok wallclock feeds WallNS, which is json:"-" in the artifact
	art, err := arts.BuildIR(u.Bench.Source, u.CoreConfig())
	if err != nil {
		return Record{}, err
	}
	res, err := arts.Run(art, vm.Config{Cache: u.CacheConfig(), Done: cancel})
	if err != nil {
		return Record{}, err
	}
	if u.Bench.Expected != "" && res.Output != u.Bench.Expected {
		return Record{}, fmt.Errorf("output %q, want %q", res.Output, u.Bench.Expected)
	}
	rec := u.Record()
	rec.SetStatic(art.Comp.Stats, spilledWebs(art))
	rec.SetStats(res.CacheStats)
	rec.Instructions = res.Instructions
	rec.WallNS = time.Since(start).Nanoseconds() //unilint:ok wallclock WallNS is json:"-": measured, logged, never serialized
	return rec, nil
}

func spilledWebs(art *artifact.Artifact) int {
	n := 0
	for _, a := range art.Comp.Allocs {
		n += a.SpilledWebs
	}
	return n
}
