package sweep

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/artifact"
)

// testGrid is small enough for unit tests: 2 fast benchmarks, 8 units.
func testGrid() Grid {
	return Grid{
		Benchmarks: []string{"queen", "sieve"},
		Compilers:  []string{CompilerBaseline},
		Modes:      []string{ModeConventional, ModeUnified},
		Sets:       []int{8},
		Ways:       []int{1, 2},
		LineWords:  []int{1},
		Policies:   []string{"lru"},
	}
}

func mustRun(t *testing.T, g Grid, opt Options) *Result {
	t.Helper()
	res, err := Run(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func encode(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res.Grid, res.Records); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestUnitsCanonicalOrder(t *testing.T) {
	g := testGrid()
	units, err := g.Units()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != g.Size() {
		t.Fatalf("units = %d, want %d", len(units), g.Size())
	}
	wantKeys := []string{
		"queen/baseline/conventional/s8.w1.l1/lru/off,nobypass",
		"queen/baseline/conventional/s8.w2.l1/lru/off,nobypass",
		"queen/baseline/unified/s8.w1.l1/lru/invalidate,bypass",
		"queen/baseline/unified/s8.w2.l1/lru/invalidate,bypass",
		"sieve/baseline/conventional/s8.w1.l1/lru/off,nobypass",
		"sieve/baseline/conventional/s8.w2.l1/lru/off,nobypass",
		"sieve/baseline/unified/s8.w1.l1/lru/invalidate,bypass",
		"sieve/baseline/unified/s8.w2.l1/lru/invalidate,bypass",
	}
	for i, u := range units {
		if u.Index != i {
			t.Errorf("unit %d has Index %d", i, u.Index)
		}
		if u.Key() != wantKeys[i] {
			t.Errorf("unit %d key = %q, want %q", i, u.Key(), wantKeys[i])
		}
	}
}

func TestGridValidate(t *testing.T) {
	cases := []func(*Grid){
		func(g *Grid) { g.Benchmarks = []string{"nosuch"} },
		func(g *Grid) { g.Compilers = []string{"llvm"} },
		func(g *Grid) { g.Modes = []string{"both"} },
		func(g *Grid) { g.Policies = []string{"plru"} },
		func(g *Grid) { g.Policies = []string{"min"} },
		func(g *Grid) { g.Sets = []int{7} },
		func(g *Grid) { g.Sets = nil },
	}
	for i, mutate := range cases {
		g := testGrid()
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: bad grid validated", i)
		}
	}
	if err := PaperGrid().Validate(); err != nil {
		t.Errorf("paper grid invalid: %v", err)
	}
	if got := PaperGrid().Size(); got != 432 {
		t.Errorf("paper grid size = %d, want 432", got)
	}
}

// TestDeterministicAcrossWorkerCounts is the engine's core contract: the
// serialized artifact is byte-identical no matter how work is scheduled.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	g := testGrid()
	one := encode(t, mustRun(t, g, Options{Workers: 1}))
	eight := encode(t, mustRun(t, g, Options{Workers: 8}))
	if !bytes.Equal(one, eight) {
		t.Fatalf("workers=1 and workers=8 artifacts differ:\n--- 1 ---\n%s\n--- 8 ---\n%s", one, eight)
	}
	if n, err := Verify(bytes.NewReader(one)); err != nil || n != g.Size() {
		t.Fatalf("Verify = (%d, %v), want (%d, nil)", n, err, g.Size())
	}
}

// TestSharedArtifactCache runs the same grid twice against one cache and
// checks the second pass compiles nothing.
func TestSharedArtifactCache(t *testing.T) {
	g := testGrid()
	arts := artifact.New()
	mustRun(t, g, Options{Workers: 4, Artifacts: arts})
	first := arts.Stats()
	// 2 benchmarks x 1 compiler x 2 modes = 4 distinct compilations.
	if first.BuildMisses != 4 {
		t.Errorf("first pass compiled %d artifacts, want 4", first.BuildMisses)
	}
	mustRun(t, g, Options{Workers: 4, Artifacts: arts})
	second := arts.Stats()
	if second.BuildMisses != first.BuildMisses {
		t.Errorf("second pass recompiled: misses %d -> %d", first.BuildMisses, second.BuildMisses)
	}
	if second.RunMisses != first.RunMisses {
		t.Errorf("second pass resimulated: misses %d -> %d", first.RunMisses, second.RunMisses)
	}
}

// TestResumeFromTruncatedFile cuts a result file mid-record and checks the
// engine re-runs exactly the missing units and reproduces the full
// artifact byte-for-byte.
func TestResumeFromTruncatedFile(t *testing.T) {
	g := testGrid()
	full := mustRun(t, g, Options{Workers: 2})
	art := encode(t, full)

	// Truncate at 60% — inside the record stream, mid-line.
	cut := art[:len(art)*6/10]
	done, _, err := ReadRecords(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if len(done) == 0 || len(done) >= g.Size() {
		t.Fatalf("salvaged %d records from truncated file, want in (0, %d)", len(done), g.Size())
	}

	resumed := mustRun(t, g, Options{Workers: 2, Done: done})
	if want := g.Size() - len(done); resumed.Ran != want {
		t.Errorf("resume ran %d units, want %d (only the missing ones)", resumed.Ran, want)
	}
	if got := encode(t, resumed); !bytes.Equal(got, art) {
		t.Error("resumed artifact differs from the full run")
	}
}

// TestSalvageDropsDamagedKeyLines feeds ReadRecords a line that is valid
// JSON but whose key no longer derives from its fields — the shape a
// record cut mid-field (or bit-flipped) can take while still parsing.
// Lenient salvage must drop it, count it, and keep intact neighbors.
func TestSalvageDropsDamagedKeyLines(t *testing.T) {
	good := Record{Bench: "queen", Compiler: CompilerBaseline, Mode: ModeConventional,
		Sets: 8, Ways: 1, LineWords: 1, Policy: "lru", Dead: "off"}
	good.SetKey()
	goodLine, err := good.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}

	// Same key, different fields: the key does not re-derive.
	damaged := good
	damaged.Sets = 32
	damagedLine, err := damaged.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}

	// A record whose key field survived as the empty string.
	empty := good
	empty.Key = ""
	emptyLine, err := empty.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}

	in := string(goodLine) + ",\n" + string(damagedLine) + ",\n" + string(emptyLine) + "\n"
	recs, dropped, err := ReadRecords(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 2 {
		t.Errorf("dropped = %d, want 2 (mismatched key + empty key)", dropped)
	}
	if len(recs) != 1 {
		t.Fatalf("salvaged %d records, want 1", len(recs))
	}
	if rec, ok := recs[good.Key]; !ok || rec.Sets != 8 {
		t.Errorf("intact record not salvaged: %+v", recs)
	}
}

// TestResumeIgnoresForeignRecords checks records outside the grid don't
// leak into the output.
func TestResumeIgnoresForeignRecords(t *testing.T) {
	g := testGrid()
	full := mustRun(t, g, Options{Workers: 2})
	done := map[string]Record{"bogus/key": {Key: "bogus/key", Bench: "bogus"}}
	resumed := mustRun(t, g, Options{Workers: 2, Done: done})
	if resumed.Ran != g.Size() {
		t.Errorf("ran %d, want %d (foreign record must not satisfy any unit)", resumed.Ran, g.Size())
	}
	if !bytes.Equal(encode(t, resumed), encode(t, full)) {
		t.Error("foreign record changed the artifact")
	}
}

func TestProgressStream(t *testing.T) {
	g := testGrid()
	var calls int
	var last int
	mustRun(t, g, Options{Workers: 3, Progress: func(done, total int, r Record) {
		calls++
		last = done
		if total != g.Size() {
			t.Errorf("total = %d, want %d", total, g.Size())
		}
		if r.Key == "" || r.Refs == 0 {
			t.Errorf("progress record incomplete: %+v", r)
		}
	}})
	if calls != g.Size() || last != g.Size() {
		t.Errorf("progress calls = %d (last done %d), want %d", calls, last, g.Size())
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	g := testGrid()
	art := string(encode(t, mustRun(t, g, Options{Workers: 2})))

	if _, err := Verify(strings.NewReader(art[:len(art)/2])); err == nil {
		t.Error("truncated artifact verified")
	}
	tampered := strings.Replace(art, `"bench":"queen"`, `"bench":"rook"`, 1)
	if _, err := Verify(strings.NewReader(tampered)); err == nil {
		t.Error("tampered record key verified")
	}
	wrongSchema := strings.Replace(art, Schema, "unicache-sweep/v0", 1)
	if _, err := Verify(strings.NewReader(wrongSchema)); err == nil {
		t.Error("wrong schema verified")
	}
}

// TestRecordsCarryTheSweepSchema spot-checks one unified unit's semantics:
// bypass references must appear, DRAM accounting must hold together.
func TestRecordsCarryTheSweepSchema(t *testing.T) {
	res := mustRun(t, testGrid(), Options{Workers: 2})
	for _, r := range res.Records {
		if r.Refs == 0 || r.Instructions == 0 || r.DRAMWords == 0 {
			t.Errorf("%s: empty measurement: %+v", r.Key, r)
		}
		if want := (r.Fetches+r.Writebacks)*int64(r.LineWords) + r.BypassReads + r.BypassWrites; r.DRAMWords != want {
			t.Errorf("%s: DRAM words %d, want %d", r.Key, r.DRAMWords, want)
		}
		if r.Mode == ModeUnified && r.BypassRefs == 0 {
			t.Errorf("%s: unified run issued no bypass references", r.Key)
		}
		if r.Mode == ModeConventional && r.BypassRefs != 0 {
			t.Errorf("%s: conventional run issued %d bypass references", r.Key, r.BypassRefs)
		}
		if r.Hits+r.Misses != r.CachedRefs {
			t.Errorf("%s: hits+misses != cached refs", r.Key)
		}
	}
}
