// Package token defines the lexical tokens of the MC language and source
// positions used across the compiler frontend.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Literal and identifier kinds carry text; operator and
// keyword kinds are fully identified by the kind alone.
const (
	EOF Kind = iota
	ILLEGAL

	// Literals and names.
	IDENT // foo
	INT   // 12345

	// Operators and delimiters.
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %

	AMP   // &
	PIPE  // |
	CARET // ^
	SHL   // <<
	SHR   // >>

	LAND // &&
	LOR  // ||
	NOT  // !

	EQ  // ==
	NEQ // !=
	LT  // <
	GT  // >
	LEQ // <=
	GEQ // >=

	ASSIGN    // =
	PLUSEQ    // +=
	MINUSEQ   // -=
	STAREQ    // *=
	SLASHEQ   // /=
	PERCENTEQ // %=
	INC       // ++
	DEC       // --
	LPAREN    // (
	RPAREN    // )
	LBRACKET  // [
	RBRACKET  // ]
	LBRACE    // {
	RBRACE    // }
	COMMA     // ,
	SEMICOLON // ;

	// Keywords.
	KWINT
	KWVOID
	KWIF
	KWELSE
	KWWHILE
	KWFOR
	KWRETURN
	KWBREAK
	KWCONTINUE
)

var kindNames = map[Kind]string{
	EOF:        "EOF",
	ILLEGAL:    "ILLEGAL",
	IDENT:      "identifier",
	INT:        "integer literal",
	PLUS:       "+",
	MINUS:      "-",
	STAR:       "*",
	SLASH:      "/",
	PERCENT:    "%",
	AMP:        "&",
	PIPE:       "|",
	CARET:      "^",
	SHL:        "<<",
	SHR:        ">>",
	LAND:       "&&",
	LOR:        "||",
	NOT:        "!",
	EQ:         "==",
	NEQ:        "!=",
	LT:         "<",
	GT:         ">",
	LEQ:        "<=",
	GEQ:        ">=",
	ASSIGN:     "=",
	PLUSEQ:     "+=",
	MINUSEQ:    "-=",
	STAREQ:     "*=",
	SLASHEQ:    "/=",
	PERCENTEQ:  "%=",
	INC:        "++",
	DEC:        "--",
	LPAREN:     "(",
	RPAREN:     ")",
	LBRACKET:   "[",
	RBRACKET:   "]",
	LBRACE:     "{",
	RBRACE:     "}",
	COMMA:      ",",
	SEMICOLON:  ";",
	KWINT:      "int",
	KWVOID:     "void",
	KWIF:       "if",
	KWELSE:     "else",
	KWWHILE:    "while",
	KWFOR:      "for",
	KWRETURN:   "return",
	KWBREAK:    "break",
	KWCONTINUE: "continue",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their kinds.
var Keywords = map[string]Kind{
	"int":      KWINT,
	"void":     KWVOID,
	"if":       KWIF,
	"else":     KWELSE,
	"while":    KWWHILE,
	"for":      KWFOR,
	"return":   KWRETURN,
	"break":    KWBREAK,
	"continue": KWCONTINUE,
}

// Pos is a source position: 1-based line and column.
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token with its source position and, for
// identifiers and literals, its text.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, ILLEGAL:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
