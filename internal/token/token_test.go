package token

import "testing"

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		EOF:       "EOF",
		IDENT:     "identifier",
		PLUS:      "+",
		LAND:      "&&",
		SHR:       ">>",
		PERCENTEQ: "%=",
		KWWHILE:   "while",
		SEMICOLON: ";",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(9999).String(); got != "Kind(9999)" {
		t.Errorf("unknown kind prints %q", got)
	}
}

func TestKeywordsTable(t *testing.T) {
	for spelling, kind := range Keywords {
		if kind.String() != spelling {
			t.Errorf("keyword %q maps to kind with string %q", spelling, kind)
		}
	}
	if len(Keywords) != 9 {
		t.Errorf("keyword count = %d, want 9", len(Keywords))
	}
}

func TestPos(t *testing.T) {
	p := Pos{Line: 3, Col: 7}
	if p.String() != "3:7" {
		t.Errorf("Pos.String = %q", p.String())
	}
	if !p.IsValid() {
		t.Error("valid position reported invalid")
	}
	if (Pos{}).IsValid() {
		t.Error("zero position reported valid")
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: IDENT, Text: "foo"}
	if got := tok.String(); got != `identifier "foo"` {
		t.Errorf("Token.String = %q", got)
	}
	op := Token{Kind: PLUS}
	if got := op.String(); got != "+" {
		t.Errorf("op token string = %q", got)
	}
}
