// Package trace defines the memory-reference trace format shared by the VM
// (which records traces) and the trace-driven cache simulator (which
// replays them under arbitrary policies, including Belady's MIN).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Kind distinguishes loads from stores.
type Kind uint8

// Reference kinds.
const (
	Load Kind = iota
	Store
)

func (k Kind) String() string {
	if k == Store {
		return "st"
	}
	return "ld"
}

// Rec is one data reference with its compiler control bits.
type Rec struct {
	Addr   int64
	Kind   Kind
	Bypass bool
	Last   bool
}

// Trace is a reference stream in program order.
type Trace []Rec

// Counts summarizes a trace.
type Counts struct {
	Refs   int
	Loads  int
	Stores int
	Bypass int
	Last   int
}

// Count tallies the trace.
func (t Trace) Count() Counts {
	var c Counts
	c.Refs = len(t)
	for _, r := range t {
		if r.Kind == Load {
			c.Loads++
		} else {
			c.Stores++
		}
		if r.Bypass {
			c.Bypass++
		}
		if r.Last {
			c.Last++
		}
	}
	return c
}

// Write emits the trace in the textual format "<ld|st> <addr> [b] [l]" one
// record per line.
func (t Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range t {
		if err := WriteRec(bw, r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteRec emits one record in Write's textual format. It exists so
// streaming producers (internal/replay) can emit the format without
// materializing a Trace; the caller owns flushing.
func WriteRec(bw *bufio.Writer, r Rec) error {
	if _, err := fmt.Fprintf(bw, "%s %d", r.Kind, r.Addr); err != nil {
		return err
	}
	if r.Bypass {
		if _, err := bw.WriteString(" b"); err != nil {
			return err
		}
	}
	if r.Last {
		if _, err := bw.WriteString(" l"); err != nil {
			return err
		}
	}
	return bw.WriteByte('\n')
}

// Read parses the textual trace format produced by Write.
func Read(r io.Reader) (Trace, error) {
	var t Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("trace: line %d: need kind and address", lineNo)
		}
		var rec Rec
		switch fields[0] {
		case "ld":
			rec.Kind = Load
		case "st":
			rec.Kind = Store
		default:
			return nil, fmt.Errorf("trace: line %d: bad kind %q", lineNo, fields[0])
		}
		addr, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			// Sscanf("%d") would silently accept trailing garbage such as
			// "12abc"; ParseInt rejects the whole field.
			return nil, fmt.Errorf("trace: line %d: bad address %q", lineNo, fields[1])
		}
		rec.Addr = addr
		for _, f := range fields[2:] {
			switch f {
			case "b":
				rec.Bypass = true
			case "l":
				rec.Last = true
			default:
				return nil, fmt.Errorf("trace: line %d: bad flag %q", lineNo, f)
			}
		}
		t = append(t, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// StripFlags returns a copy of the trace with bypass and last bits cleared
// (the conventional-hardware view of the same reference stream).
func (t Trace) StripFlags() Trace {
	out := make(Trace, len(t))
	for i, r := range t {
		out[i] = Rec{Addr: r.Addr, Kind: r.Kind}
	}
	return out
}
