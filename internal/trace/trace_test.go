package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	in := Trace{
		{Addr: 0, Kind: Load},
		{Addr: 99, Kind: Store},
		{Addr: 12345, Kind: Load, Bypass: true},
		{Addr: 7, Kind: Load, Bypass: true, Last: true},
		{Addr: 8, Kind: Store, Bypass: true},
	}
	var buf bytes.Buffer
	if err := in.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("rec %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := make(Trace, int(n))
		for i := range in {
			in[i] = Rec{
				Addr:   int64(rng.Intn(1 << 20)),
				Kind:   Kind(rng.Intn(2)),
				Bypass: rng.Intn(2) == 0,
				Last:   rng.Intn(2) == 0,
			}
		}
		var buf bytes.Buffer
		if err := in.Write(&buf); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	tr, err := Read(strings.NewReader("# header\n\nld 5 b l\n  \nst 6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 {
		t.Fatalf("records = %d, want 2", len(tr))
	}
	if !tr[0].Bypass || !tr[0].Last || tr[0].Kind != Load || tr[0].Addr != 5 {
		t.Errorf("rec 0 = %+v", tr[0])
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"xx 5",
		"ld notanumber",
		"ld 12abc", // trailing garbage: ParseInt must reject the whole field
		"ld 0x10",
		"ld",
		"ld 5 q",
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read(%q) should fail", src)
		}
	}
}

func TestCount(t *testing.T) {
	tr := Trace{
		{Kind: Load, Bypass: true, Last: true},
		{Kind: Store},
		{Kind: Load},
	}
	c := tr.Count()
	if c.Refs != 3 || c.Loads != 2 || c.Stores != 1 || c.Bypass != 1 || c.Last != 1 {
		t.Errorf("counts = %+v", c)
	}
}

func TestStripFlags(t *testing.T) {
	tr := Trace{{Addr: 4, Kind: Load, Bypass: true, Last: true}}
	s := tr.StripFlags()
	if s[0].Bypass || s[0].Last {
		t.Error("flags not stripped")
	}
	if s[0].Addr != 4 || s[0].Kind != Load {
		t.Error("address or kind changed")
	}
	if !tr[0].Bypass {
		t.Error("original mutated")
	}
}
