// Package types implements the MC type system: machine integers, n-D
// arrays, pointers, and function signatures. All scalar data is one machine
// word; array and aggregate sizes are measured in words, matching the
// word-addressed UM32 machine model.
package types

import (
	"fmt"
	"strings"
)

// Kind discriminates the type structure.
type Kind int

// Type kinds.
const (
	Invalid Kind = iota
	IntKind
	VoidKind
	PointerKind
	ArrayKind
	FuncKind
)

// Type describes an MC type. Types are immutable after construction; the
// shared singletons Int and Void may be compared by pointer but Equal should
// be used for structural comparison.
type Type struct {
	Kind   Kind
	Elem   *Type   // Pointer and Array element type
	Len    int     // Array length (elements)
	Params []*Type // Func parameter types
	Result *Type   // Func result type (Void for procedures)
}

// Shared scalar singletons.
var (
	Int  = &Type{Kind: IntKind}
	Void = &Type{Kind: VoidKind}
)

// PointerTo returns the type *elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: PointerKind, Elem: elem} }

// ArrayOf returns the type elem[n].
func ArrayOf(n int, elem *Type) *Type { return &Type{Kind: ArrayKind, Len: n, Elem: elem} }

// NewFunc returns a function signature type.
func NewFunc(params []*Type, result *Type) *Type {
	return &Type{Kind: FuncKind, Params: params, Result: result}
}

// IsInt reports whether t is the machine integer type.
func (t *Type) IsInt() bool { return t != nil && t.Kind == IntKind }

// IsVoid reports whether t is void.
func (t *Type) IsVoid() bool { return t != nil && t.Kind == VoidKind }

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t != nil && t.Kind == PointerKind }

// IsArray reports whether t is an array type.
func (t *Type) IsArray() bool { return t != nil && t.Kind == ArrayKind }

// IsFunc reports whether t is a function type.
func (t *Type) IsFunc() bool { return t != nil && t.Kind == FuncKind }

// IsScalar reports whether t occupies a single word (int or pointer) and is
// therefore a register candidate.
func (t *Type) IsScalar() bool { return t.IsInt() || t.IsPointer() }

// Words returns the storage size of t in machine words. Functions and void
// have no storage and report 0.
func (t *Type) Words() int {
	switch t.Kind {
	case IntKind, PointerKind:
		return 1
	case ArrayKind:
		return t.Len * t.Elem.Words()
	default:
		return 0
	}
}

// Decay converts an array type to a pointer to its element type, modeling
// C-style array-to-pointer decay in expression contexts. Non-array types are
// returned unchanged.
func (t *Type) Decay() *Type {
	if t.IsArray() {
		return PointerTo(t.Elem)
	}
	return t
}

// Equal reports structural type equality.
func Equal(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case IntKind, VoidKind:
		return true
	case PointerKind:
		return Equal(a.Elem, b.Elem)
	case ArrayKind:
		return a.Len == b.Len && Equal(a.Elem, b.Elem)
	case FuncKind:
		if len(a.Params) != len(b.Params) || !Equal(a.Result, b.Result) {
			return false
		}
		for i := range a.Params {
			if !Equal(a.Params[i], b.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the type in C-like syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case IntKind:
		return "int"
	case VoidKind:
		return "void"
	case PointerKind:
		return t.Elem.String() + "*"
	case ArrayKind:
		// Collect dimensions outermost-first: int[3][4].
		dims := ""
		base := t
		for base.IsArray() {
			dims += fmt.Sprintf("[%d]", base.Len)
			base = base.Elem
		}
		return base.String() + dims
	case FuncKind:
		var parts []string
		for _, p := range t.Params {
			parts = append(parts, p.String())
		}
		return fmt.Sprintf("%s(%s)", t.Result, strings.Join(parts, ", "))
	}
	return "invalid"
}
