package types

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWords(t *testing.T) {
	cases := []struct {
		t    *Type
		want int
	}{
		{Int, 1},
		{PointerTo(Int), 1},
		{ArrayOf(40, Int), 40},
		{ArrayOf(40, ArrayOf(40, Int)), 1600},
		{Void, 0},
		{NewFunc(nil, Void), 0},
	}
	for _, tc := range cases {
		if got := tc.t.Words(); got != tc.want {
			t.Errorf("%s.Words() = %d, want %d", tc.t, got, tc.want)
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		t    *Type
		want string
	}{
		{Int, "int"},
		{Void, "void"},
		{PointerTo(Int), "int*"},
		{ArrayOf(3, ArrayOf(4, Int)), "int[3][4]"},
		{PointerTo(ArrayOf(4, Int)), "int[4]*"},
		{NewFunc([]*Type{Int, PointerTo(Int)}, Int), "int(int, int*)"},
	}
	for _, tc := range cases {
		if got := tc.t.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal(ArrayOf(3, Int), ArrayOf(3, Int)) {
		t.Error("equal arrays not Equal")
	}
	if Equal(ArrayOf(3, Int), ArrayOf(4, Int)) {
		t.Error("different lengths Equal")
	}
	if !Equal(PointerTo(Int), PointerTo(Int)) {
		t.Error("equal pointers not Equal")
	}
	if Equal(PointerTo(Int), Int) {
		t.Error("pointer Equal to int")
	}
	if !Equal(NewFunc([]*Type{Int}, Void), NewFunc([]*Type{Int}, Void)) {
		t.Error("equal funcs not Equal")
	}
	if Equal(NewFunc([]*Type{Int}, Void), NewFunc([]*Type{Int, Int}, Void)) {
		t.Error("different arity Equal")
	}
	if Equal(nil, Int) || !Equal(nil, nil) {
		t.Error("nil handling wrong")
	}
}

func TestDecay(t *testing.T) {
	a := ArrayOf(8, Int)
	d := a.Decay()
	if !d.IsPointer() || !d.Elem.IsInt() {
		t.Errorf("decay of %s = %s, want int*", a, d)
	}
	if Int.Decay() != Int {
		t.Error("int decayed")
	}
	// 2-D array decays one level only.
	m := ArrayOf(3, ArrayOf(4, Int))
	if got := m.Decay().String(); got != "int[4]*" {
		t.Errorf("2D decay = %s, want int[4]*", got)
	}
}

func TestPredicates(t *testing.T) {
	if !Int.IsScalar() || !PointerTo(Int).IsScalar() {
		t.Error("int/pointer should be scalar")
	}
	if ArrayOf(2, Int).IsScalar() || Void.IsScalar() {
		t.Error("array/void should not be scalar")
	}
	if !NewFunc(nil, Int).IsFunc() {
		t.Error("func type not IsFunc")
	}
}

// Property test: Equal is reflexive and symmetric over random type trees.
func TestEqualPropertiesQuick(t *testing.T) {
	var gen func(r *rand.Rand, depth int) *Type
	gen = func(r *rand.Rand, depth int) *Type {
		if depth <= 0 {
			return Int
		}
		switch r.Intn(4) {
		case 0:
			return Int
		case 1:
			return PointerTo(gen(r, depth-1))
		case 2:
			return ArrayOf(1+r.Intn(8), gen(r, depth-1))
		default:
			n := r.Intn(3)
			params := make([]*Type, n)
			for i := range params {
				params[i] = gen(r, depth-1)
			}
			return NewFunc(params, gen(r, depth-1))
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := gen(r, 4)
		b := gen(r, 4)
		if !Equal(a, a) || !Equal(b, b) {
			return false // reflexivity
		}
		if Equal(a, b) != Equal(b, a) {
			return false // symmetry
		}
		// Structural copy must be Equal.
		c := ArrayOf(5, a)
		d := ArrayOf(5, a)
		return Equal(c, d) && !Equal(c, ArrayOf(6, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
