// Package vm interprets UM programs against the cache-fronted memory
// model. It is the measurement harness of the reproduction: it executes
// the compiled benchmarks, feeds every data reference (with its bypass and
// last-reference bits) through internal/cache, and can record reference
// traces for the trace-driven policy studies.
//
// Instruction fetches go through an optional instruction-cache model
// (Config.ICache); the paper's evaluation concerns the data cache (§5),
// so the default leaves it off.
package vm

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Config controls a run.
type Config struct {
	MemWords    int   // memory size in words (default 1<<22)
	MaxSteps    int64 // instruction budget (default 2e9)
	Cache       cache.Config
	RecordTrace bool // capture the data-reference trace in Result.Trace

	// TraceSink, when non-nil, receives every data reference as it
	// executes — the streaming alternative to RecordTrace (which
	// materializes the whole trace in memory). internal/replay's Encoder
	// implements it; the two options are independent and may be combined.
	TraceSink TraceSink

	// ICache, when non-nil, models an instruction cache: every fetch is a
	// cached read of the PC (instructions are the paper's third reference
	// class — always through the cache, §4.2). Statistics land in
	// Result.ICacheStats.
	ICache *cache.Config

	// OnRef, when non-nil, observes every executed data reference with its
	// dynamic bypass/hit outcome — the seam the static-vs-dynamic oracle
	// (internal/exact) replays verdicts against. The hook sees references
	// in execution order. Runs with a hook are never memoized by the
	// artifact cache.
	OnRef func(RefEvent)

	// Done, when non-nil, cancels the run when the channel becomes
	// readable (typically a context's Done channel). The loop polls it
	// every cancelCheckMask+1 instructions, so cancellation is prompt
	// without a per-step channel operation; a fired Done surfaces as a
	// structured *CancelError, the wall-clock sibling of BudgetError.
	// Done is not part of a run's identity: the artifact cache ignores it
	// when keying and never memoizes a canceled result.
	Done <-chan struct{}
}

// cancelCheckMask spaces Config.Done polls: the budget check runs every
// instruction, the cancellation check every 4096.
const cancelCheckMask = 1<<12 - 1

// TraceSink receives the data-reference stream during execution.
// Implementations must not retain the record past the call (it is
// passed by value, so they can't) and must be cheap: the VM calls Ref
// inline on every load and store.
type TraceSink interface {
	Ref(trace.Rec)
}

// RefEvent is one executed data reference, as observed by Config.OnRef.
type RefEvent struct {
	PC       int   // program counter of the LW/SW
	Store    bool  // true for SW
	Addr     int64 // effective word address
	Bypassed bool  // the reference skipped the cache (UmAm, bypass honored)
	Hit      bool  // through-cache reference that hit (false for bypassed refs)
}

// Normalized returns the configuration with the defaults Run applies
// filled in: two configurations with equal Normalized values produce
// identical runs. Callers that key on a Config (the artifact run cache)
// must normalize first so zero values and explicit defaults coincide.
func (c Config) Normalized() Config {
	if c.MemWords == 0 {
		c.MemWords = 1 << 22
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 2_000_000_000
	}
	if c.Cache.Sets == 0 {
		c.Cache = cache.DefaultConfig()
	}
	return c
}

// Result is the outcome of a run.
type Result struct {
	Output       string
	Instructions int64
	Loads        int64
	Stores       int64
	CacheStats   cache.Stats
	FaultStats   cache.FaultStats // detection-layer counters (fault campaigns)
	ICacheStats  *cache.Stats     // set when Config.ICache was provided
	Trace        trace.Trace
}

// BudgetError reports that the instruction budget ran out before HALT. It
// carries the faulting program counter and (when label information allows)
// the enclosing function, so tools can say where the program was spinning.
type BudgetError struct {
	Limit int64  // the exhausted MaxSteps budget
	PC    int    // program counter at exhaustion
	Func  string // enclosing function label, "" if unknown
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("vm: step budget (%d instructions) exhausted at %s",
		e.Limit, site(e.PC, e.Func))
}

// CancelError reports that the run was stopped through Config.Done before
// reaching HALT — a deadline or shutdown, not a property of the program.
// Unlike BudgetError it is nondeterministic (where the run was when the
// channel fired depends on wall clock), so it must never be memoized.
type CancelError struct {
	Steps int64  // instructions executed when cancellation was observed
	PC    int    // program counter at cancellation
	Func  string // enclosing function label, "" if unknown
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("vm: run canceled at %s after %d instructions",
		site(e.PC, e.Func), e.Steps)
}

// site renders "pc N" or "pc N (in func)" for error messages.
func site(pc int, fn string) string {
	if fn == "" {
		return fmt.Sprintf("pc %d", pc)
	}
	return fmt.Sprintf("pc %d (in %s)", pc, fn)
}

// DynamicBypassPercent is the runtime fraction of data references marked
// unambiguous (the quantity of Figure 5's "runtime" series).
func (r *Result) DynamicBypassPercent() float64 {
	if r.CacheStats.Refs == 0 {
		return 0
	}
	return 100 * float64(r.CacheStats.BypassRefs) / float64(r.CacheStats.Refs)
}

// Run executes the program until HALT.
//
// Run never mutates p: all machine state (registers, memory, cache,
// statistics) lives in the run itself, so any number of simulations of the
// same *Program may execute concurrently — the property the sweep engine's
// worker pool relies on, verified under -race by TestConcurrentRunsShareProgram.
func Run(p *isa.Program, cfg Config) (*Result, error) {
	cfg = cfg.Normalized()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mem, err := cache.NewMemory(cfg.MemWords, cfg.Cache)
	if err != nil {
		return nil, err
	}
	for addr, v := range p.GlobalInit {
		mem.Poke(addr, v)
	}
	var imem *cache.Memory
	if cfg.ICache != nil {
		icfg := *cfg.ICache
		icfg.HonorBypass = false // instructions always use the cache
		// Round the instruction space up to a whole number of lines.
		words := (len(p.Instrs) + icfg.LineWords - 1) / icfg.LineWords * icfg.LineWords
		imem, err = cache.NewMemory(words, icfg)
		if err != nil {
			return nil, fmt.Errorf("vm: icache: %w", err)
		}
	}

	var regs [isa.NumRegs]int64
	regs[isa.SP] = int64(cfg.MemWords)

	res := &Result{}
	var out strings.Builder
	pc := p.Entry
	n := len(p.Instrs)

	// Hot-loop locals: the counters live in registers and land in res at
	// HALT (error returns discard res), and the config fields consulted
	// per instruction don't re-read the struct.
	var instructions, loads, stores int64
	maxSteps := cfg.MaxSteps
	memWords := int64(cfg.MemWords)
	done := cfg.Done
	for steps := int64(0); ; steps++ {
		if steps >= maxSteps {
			return nil, &BudgetError{Limit: maxSteps, PC: pc, Func: p.FuncAt(pc)}
		}
		if done != nil && steps&cancelCheckMask == 0 {
			select {
			case <-done:
				return nil, &CancelError{Steps: steps, PC: pc, Func: p.FuncAt(pc)}
			default:
			}
		}
		if pc < 0 || pc >= n {
			return nil, fmt.Errorf("vm: pc %d out of range", pc)
		}
		in := &p.Instrs[pc]
		instructions++
		if imem != nil {
			imem.Load(int64(pc), false, false)
		}
		next := pc + 1

		switch in.Op {
		case isa.NOP:
		case isa.HALT:
			// Drain dirty lines so end-of-run writeback faults (dropped
			// writebacks, latent ECC damage) are detected, not left latent.
			mem.FlushAll()
			if err := mem.FaultErr(); err != nil {
				return nil, fmt.Errorf("vm: at %s: %w", site(pc, p.FuncAt(pc)), err)
			}
			res.Output = out.String()
			res.Instructions = instructions
			res.Loads = loads
			res.Stores = stores
			res.CacheStats = mem.Stats()
			res.FaultStats = mem.FaultStats()
			if imem != nil {
				ist := imem.Stats()
				res.ICacheStats = &ist
			}
			return res, nil
		case isa.LI:
			regs[in.Rd] = in.Imm
		case isa.MOVE:
			regs[in.Rd] = regs[in.Rs]
		case isa.ADD:
			regs[in.Rd] = regs[in.Rs] + regs[in.Rt]
		case isa.SUB:
			regs[in.Rd] = regs[in.Rs] - regs[in.Rt]
		case isa.MUL:
			regs[in.Rd] = regs[in.Rs] * regs[in.Rt]
		case isa.DIV:
			if regs[in.Rt] == 0 {
				return nil, fmt.Errorf("vm: division by zero at pc %d", pc)
			}
			// MinInt64 / -1 overflows; the machine wraps (two's
			// complement), it does not trap.
			if regs[in.Rt] == -1 {
				regs[in.Rd] = -regs[in.Rs]
			} else {
				regs[in.Rd] = regs[in.Rs] / regs[in.Rt]
			}
		case isa.REM:
			if regs[in.Rt] == 0 {
				return nil, fmt.Errorf("vm: remainder by zero at pc %d", pc)
			}
			if regs[in.Rt] == -1 {
				regs[in.Rd] = 0
			} else {
				regs[in.Rd] = regs[in.Rs] % regs[in.Rt]
			}
		case isa.AND:
			regs[in.Rd] = regs[in.Rs] & regs[in.Rt]
		case isa.OR:
			regs[in.Rd] = regs[in.Rs] | regs[in.Rt]
		case isa.XOR:
			regs[in.Rd] = regs[in.Rs] ^ regs[in.Rt]
		case isa.SLLV:
			regs[in.Rd] = regs[in.Rs] << uint64(regs[in.Rt]&63)
		case isa.SRAV:
			regs[in.Rd] = regs[in.Rs] >> uint64(regs[in.Rt]&63)
		case isa.SEQ:
			regs[in.Rd] = b2i(regs[in.Rs] == regs[in.Rt])
		case isa.SNE:
			regs[in.Rd] = b2i(regs[in.Rs] != regs[in.Rt])
		case isa.SLT:
			regs[in.Rd] = b2i(regs[in.Rs] < regs[in.Rt])
		case isa.SLE:
			regs[in.Rd] = b2i(regs[in.Rs] <= regs[in.Rt])
		case isa.SGT:
			regs[in.Rd] = b2i(regs[in.Rs] > regs[in.Rt])
		case isa.SGE:
			regs[in.Rd] = b2i(regs[in.Rs] >= regs[in.Rt])
		case isa.NEG:
			regs[in.Rd] = -regs[in.Rs]
		case isa.NOT:
			regs[in.Rd] = b2i(regs[in.Rs] == 0)
		case isa.ADDI:
			regs[in.Rd] = regs[in.Rs] + in.Imm
		case isa.LW:
			addr := regs[in.Rs] + in.Imm
			if addr < 0 || addr >= memWords {
				return nil, fmt.Errorf("vm: load address %d out of range at pc %d (%s)", addr, pc, in)
			}
			var before cache.Stats
			if cfg.OnRef != nil {
				before = mem.Stats()
			}
			regs[in.Rd] = mem.Load(addr, in.Bypass, in.Last)
			if err := mem.FaultErr(); err != nil {
				return nil, fmt.Errorf("vm: at %s: %w", site(pc, p.FuncAt(pc)), err)
			}
			loads++
			if cfg.OnRef != nil {
				after := mem.Stats()
				cfg.OnRef(RefEvent{PC: pc, Addr: addr,
					Bypassed: after.CachedRefs == before.CachedRefs,
					Hit:      after.Hits > before.Hits})
			}
			if cfg.RecordTrace {
				res.Trace = append(res.Trace, trace.Rec{Addr: addr, Kind: trace.Load,
					Bypass: in.Bypass, Last: in.Last})
			}
			if cfg.TraceSink != nil {
				cfg.TraceSink.Ref(trace.Rec{Addr: addr, Kind: trace.Load,
					Bypass: in.Bypass, Last: in.Last})
			}
		case isa.SW:
			addr := regs[in.Rs] + in.Imm
			if addr < 0 || addr >= memWords {
				return nil, fmt.Errorf("vm: store address %d out of range at pc %d (%s)", addr, pc, in)
			}
			var before cache.Stats
			if cfg.OnRef != nil {
				before = mem.Stats()
			}
			mem.Store(addr, regs[in.Rt], in.Bypass, in.Last)
			if err := mem.FaultErr(); err != nil {
				return nil, fmt.Errorf("vm: at %s: %w", site(pc, p.FuncAt(pc)), err)
			}
			stores++
			if cfg.OnRef != nil {
				after := mem.Stats()
				cfg.OnRef(RefEvent{PC: pc, Store: true, Addr: addr,
					Bypassed: after.CachedRefs == before.CachedRefs,
					Hit:      after.Hits > before.Hits})
			}
			if cfg.RecordTrace {
				res.Trace = append(res.Trace, trace.Rec{Addr: addr, Kind: trace.Store,
					Bypass: in.Bypass, Last: in.Last})
			}
			if cfg.TraceSink != nil {
				cfg.TraceSink.Ref(trace.Rec{Addr: addr, Kind: trace.Store,
					Bypass: in.Bypass, Last: in.Last})
			}
		case isa.BEQZ:
			if regs[in.Rs] == 0 {
				next = in.Target
			}
		case isa.BNEZ:
			if regs[in.Rs] != 0 {
				next = in.Target
			}
		case isa.J:
			next = in.Target
		case isa.JAL:
			regs[isa.RA] = int64(pc + 1)
			next = in.Target
		case isa.JR:
			next = int(regs[in.Rs])
		case isa.PRINT:
			if in.Imm == 1 {
				out.WriteByte(byte(regs[in.Rs]))
			} else {
				fmt.Fprintf(&out, "%d\n", regs[in.Rs])
			}
		default:
			return nil, fmt.Errorf("vm: unhandled opcode %s at pc %d", in.Op, pc)
		}

		regs[isa.Zero] = 0 // r0 is hardwired
		pc = next
	}
}

func b2i(c bool) int64 {
	if c {
		return 1
	}
	return 0
}
