package vm

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/core"
)

// spinSource loops long enough (hundreds of millions of instructions)
// that a canceled run must stop well before HALT.
const spinSource = `
void main() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 100000000; i++) {
        acc = acc + i;
    }
    print(acc);
}`

// TestCancelStopsRun proves the Config.Done seam: a run whose Done fires
// mid-execution returns a structured *CancelError promptly instead of
// running its full budget.
func TestCancelStopsRun(t *testing.T) {
	comp, err := core.Compile(spinSource, core.Config{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog, err := codegen.Generate(comp)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}

	done := make(chan struct{})
	time.AfterFunc(20*time.Millisecond, func() { close(done) })
	start := time.Now()
	_, err = Run(prog, Config{Cache: cache.DefaultConfig(), Done: done})
	elapsed := time.Since(start)

	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CancelError, got %v", err)
	}
	if ce.Steps <= 0 {
		t.Errorf("CancelError.Steps = %d, want > 0", ce.Steps)
	}
	// Generous tolerance: the poll interval is 4096 instructions, so the
	// run should stop within tens of milliseconds of the fire, not after
	// simulating 100M iterations.
	if elapsed > 5*time.Second {
		t.Errorf("canceled run took %v, want prompt stop", elapsed)
	}

	// A pre-fired Done cancels before the first poll window elapses.
	fired := make(chan struct{})
	close(fired)
	_, err = Run(prog, Config{Cache: cache.DefaultConfig(), Done: fired})
	if !errors.As(err, &ce) {
		t.Fatalf("pre-fired Done: want *CancelError, got %v", err)
	}

	// A nil Done changes nothing: the budget machinery still governs, so
	// an undersized MaxSteps yields BudgetError, not CancelError.
	var be *BudgetError
	_, err = Run(prog, Config{Cache: cache.DefaultConfig(), MaxSteps: 10_000})
	if !errors.As(err, &be) {
		t.Fatalf("nil Done with small budget: want *BudgetError, got %v", err)
	}
}
