package vm

import (
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
)

// concurrencyProg exercises every memory flavor (cached, bypass,
// dead-marked) in a loop long enough that concurrent runs genuinely
// overlap.
const concurrencyProg = `
.globals 8
.init 64 0
    jal main
    halt
main:
    li $t0, 64
    li $t1, 0
    li $t2, 2000
main.loop:
    lw.am $t3, 0($t0)
    add $t3, $t3, $t1
    sw.am $t3, 0($t0)
    sw.um $t1, 1($t0)
    lw.uml $t4, 1($t0)
    addi $t1, $t1, 1
    sub $t5, $t1, $t2
    bnez $t5, main.loop
    lw.um $t6, 0($t0)
    print $t6
    jr $ra
`

// TestConcurrentRunsShareProgram proves the property the sweep engine's
// worker pool depends on: Run never mutates the *Program, so any number
// of simulations of one compiled artifact may execute at once. Run under
// -race (CI does) this fails on any shared-state write.
func TestConcurrentRunsShareProgram(t *testing.T) {
	prog, err := isa.Assemble(concurrencyProg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(prog, Config{Cache: cache.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{Cache: cache.DefaultConfig()}
			if i%2 == 1 {
				cfg.Cache = cache.ConventionalConfig()
				cfg.RecordTrace = true
			}
			results[i], errs[i] = Run(prog, cfg)
		}(i)
	}
	wg.Wait()

	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if results[i].Output != ref.Output {
			t.Errorf("run %d: output %q, want %q", i, results[i].Output, ref.Output)
		}
	}
	// Same-config runs must also agree on every statistic.
	again, err := Run(prog, Config{Cache: cache.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheStats != ref.CacheStats {
		t.Errorf("repeated run stats diverge: %+v vs %+v", again.CacheStats, ref.CacheStats)
	}
}
