package vm

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/core"
)

func compileFor(t *testing.T, src string, cfg core.Config) *Result {
	t.Helper()
	comp, err := core.Compile(src, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog, err := codegen.Generate(comp)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	res, err := Run(prog, Config{Cache: cache.DefaultConfig()})
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	return res
}

// TestDivRemEdgeCases pins the machine's division semantics, including
// the MinInt64 / -1 overflow case that a naive Go implementation panics
// on. The machine wraps; it must not trap or crash.
func TestDivRemEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"min-div-minus-one", `
void main() {
    int min;
    int m1;
    min = 1;
    min = min << 63;
    m1 = 0 - 1;
    print(min / m1);
}`, "-9223372036854775808\n"},
		{"min-rem-minus-one", `
void main() {
    int min;
    int m1;
    min = 1;
    min = min << 63;
    m1 = 0 - 1;
    print(min % m1);
}`, "0\n"},
		{"negative-div", `
void main() {
    int a;
    int b;
    a = 0 - 7;
    b = 2;
    print(a / b);
    print(a % b);
}`, "-3\n-1\n"},
		{"div-by-negative", `
void main() {
    int a;
    int b;
    a = 7;
    b = 0 - 2;
    print(a / b);
    print(a % b);
}`, "-3\n1\n"},
	}
	for _, mode := range []core.Mode{core.Conventional, core.Unified} {
		for _, opt := range []bool{false, true} {
			for _, c := range cases {
				c := c
				t.Run(c.name, func(t *testing.T) {
					res := compileFor(t, c.src, core.Config{Mode: mode, Optimize: opt})
					if res.Output != c.want {
						t.Errorf("mode=%v opt=%v: output %q, want %q", mode, opt, res.Output, c.want)
					}
				})
			}
		}
	}
}

// TestConstantFoldedMinDiv hits the same overflow through the optimizer's
// constant folder: both operands are compile-time constants, so the fold
// path (not the VM) computes the quotient.
func TestConstantFoldedMinDiv(t *testing.T) {
	src := `
void main() {
    print((1 << 63) / -1);
    print((1 << 63) % -1);
}`
	res := compileFor(t, src, core.Config{Mode: core.Unified, Optimize: true})
	want := "-9223372036854775808\n0\n"
	if res.Output != want {
		t.Errorf("output %q, want %q", res.Output, want)
	}
}

func TestDivZeroTraps(t *testing.T) {
	for _, src := range []string{
		`void main() { int z; z = 0; print(5 / z); }`,
		`void main() { int z; z = 0; print(5 % z); }`,
	} {
		comp, err := core.Compile(src, core.Config{Mode: core.Unified})
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		prog, err := codegen.Generate(comp)
		if err != nil {
			t.Fatalf("codegen: %v", err)
		}
		_, err = Run(prog, Config{Cache: cache.DefaultConfig()})
		if err == nil || !strings.Contains(err.Error(), "zero") {
			t.Errorf("want division/remainder-by-zero trap, got %v", err)
		}
	}
}

// TestStepBudgetError checks the typed budget error carries the faulting
// function so harnesses can distinguish slow programs from broken ones.
func TestStepBudgetError(t *testing.T) {
	comp, err := core.Compile(`void main() { while (1) { } }`, core.Config{Mode: core.Unified})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog, err := codegen.Generate(comp)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	_, err = Run(prog, Config{MaxSteps: 500, Cache: cache.DefaultConfig()})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %v", err)
	}
	if be.Limit != 500 {
		t.Errorf("BudgetError.Limit = %d, want 500", be.Limit)
	}
	if be.Func != "main" {
		t.Errorf("BudgetError.Func = %q, want main", be.Func)
	}
}

// TestDeepRecursionExhaustsMemory: unbounded recursion must surface as a
// clean error (out-of-range store when the stack runs into low memory),
// never a Go panic or silent corruption.
func TestDeepRecursionExhaustsMemory(t *testing.T) {
	src := `
int down(int n) { return down(n + 1); }
void main() { print(down(0)); }`
	comp, err := core.Compile(src, core.Config{Mode: core.Unified})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prog, err := codegen.Generate(comp)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	_, err = Run(prog, Config{MemWords: 1 << 12, MaxSteps: 1_000_000, Cache: cache.DefaultConfig()})
	if err == nil {
		t.Fatal("unbounded recursion should not succeed")
	}
	var be *BudgetError
	if errors.As(err, &be) {
		t.Fatalf("recursion in tiny memory should fault on the stack, not the step budget: %v", err)
	}
}

// TestBoundedRecursionDepth: recursion that fits the configured memory
// must complete exactly.
func TestBoundedRecursionDepth(t *testing.T) {
	src := `
int depth(int n) {
    if (n < 1) { return 0; }
    return 1 + depth(n - 1);
}
void main() { print(depth(200)); }`
	res := compileFor(t, src, core.Config{Mode: core.Unified})
	if res.Output != "200\n" {
		t.Errorf("output %q, want %q", res.Output, "200\n")
	}
}

// TestArithmeticWrap: add/sub/mul overflow wraps two's complement — no
// trap, same answer in every mode.
func TestArithmeticWrap(t *testing.T) {
	src := `
void main() {
    int max;
    max = (1 << 62) - 1 + (1 << 62);
    print(max + 1);
    print(max * 2);
    int min;
    min = 1 << 63;
    print(min - 1);
}`
	want := "-9223372036854775808\n-2\n9223372036854775807\n"
	for _, opt := range []bool{false, true} {
		res := compileFor(t, src, core.Config{Mode: core.Unified, Optimize: opt})
		if res.Output != want {
			t.Errorf("opt=%v: output %q, want %q", opt, res.Output, want)
		}
	}
}
