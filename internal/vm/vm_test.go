package vm

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/irinterp"
	"repro/internal/isa"
	"repro/internal/regalloc"
)

// runBoth compiles src under cfg, runs the UM program on the VM with the
// given cache config, and the IR on the reference interpreter; both outputs
// must match.
func runBoth(t *testing.T, src string, ccfg core.Config, mcfg cache.Config) *Result {
	t.Helper()
	comp, err := core.Compile(src, ccfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	want, err := irinterp.Run(comp.Prog, irinterp.Config{})
	if err != nil {
		t.Fatalf("irinterp: %v", err)
	}
	prog, err := codegen.Generate(comp)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	res, err := Run(prog, Config{Cache: mcfg})
	if err != nil {
		t.Fatalf("vm: %v\nlisting:\n%s", err, prog.Listing())
	}
	if res.Output != want.Output {
		t.Fatalf("vm output %q != irinterp output %q\nlisting:\n%s",
			res.Output, want.Output, prog.Listing())
	}
	return res
}

var tiny = regalloc.Target{CallerSaved: []int{8, 9}, CalleeSaved: []int{16, 17}}

// matrix of programs exercising calls, recursion, arrays, pointers, spills.
var programs = []string{
	`void main() { print(42); printchar(65); printchar(10); }`,
	`
int add3(int a, int b, int c) { return a + b + c; }
void main() { print(add3(1, 2, 3)); }`,
	`
int six(int a, int b, int c, int d, int e, int f) {
    return a + 10 * b + 100 * c + 1000 * d + 10000 * e + 100000 * f;
}
void main() { print(six(1, 2, 3, 4, 5, 6)); }`,
	`
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
void main() { print(fib(16)); }`,
	`
int a[64];
void main() {
    int i;
    int s;
    for (i = 0; i < 64; i++) a[i] = i * 7 % 13;
    s = 0;
    for (i = 0; i < 64; i++) s += a[i];
    print(s);
}`,
	`
int m[8][8];
void main() {
    int i; int j; int s;
    for (i = 0; i < 8; i++)
        for (j = 0; j < 8; j++)
            m[i][j] = i * 8 + j;
    s = 0;
    for (i = 0; i < 8; i++) s += m[i][i];
    print(s);
}`,
	`
int g;
void bump(int *p, int by) { *p = *p + by; }
void main() {
    int local;
    local = 5;
    bump(&g, 3);
    bump(&local, 4);
    print(g);
    print(local);
}`,
	`
void main() {
    int a; int b; int cc; int d; int e; int f2; int g2; int h2; int i2; int j2;
    a=1; b=2; cc=3; d=4; e=5; f2=6; g2=7; h2=8; i2=9; j2=10;
    print(a+b+cc+d+e+f2+g2+h2+i2+j2);
    print(a*b + cc*d + e*f2 + g2*h2 + i2*j2);
    print((a-b)*(cc-d)*(e-f2)*(g2-h2)*(i2-j2));
}`,
	`
int sum(int *v, int n) {
    int s; int i;
    s = 0;
    for (i = 0; i < n; i++) s += v[i];
    return s;
}
int data[10];
void main() {
    int i;
    for (i = 0; i < 10; i++) data[i] = i;
    print(sum(data, 10));
    print(sum(data, 5));
}`,
	`
void main() {
    int i;
    int s;
    s = 0;
    for (i = 0; i < 50; i++) {
        if (i % 3 == 0) continue;
        if (i > 40) break;
        s += i;
    }
    print(s);
}`,
}

func TestVMMatchesInterpreterUnified(t *testing.T) {
	for i, src := range programs {
		res := runBoth(t, src, core.Config{Mode: core.Unified}, cache.DefaultConfig())
		if res.Instructions == 0 {
			t.Errorf("program %d: zero instructions", i)
		}
	}
}

func TestVMMatchesInterpreterConventional(t *testing.T) {
	for _, src := range programs {
		runBoth(t, src, core.Config{Mode: core.Conventional}, cache.ConventionalConfig())
	}
}

func TestVMMatchesInterpreterSpilled(t *testing.T) {
	for _, src := range programs {
		runBoth(t, src, core.Config{Mode: core.Unified, Target: tiny}, cache.DefaultConfig())
		runBoth(t, src, core.Config{Mode: core.Conventional, Target: tiny}, cache.ConventionalConfig())
	}
}

func TestVMAcrossCacheGeometries(t *testing.T) {
	src := programs[4] // array workload
	geoms := []cache.Config{
		{Sets: 1, Ways: 1, LineWords: 1, Policy: cache.LRU, Dead: cache.DeadInvalidate, HonorBypass: true, Seed: 1},
		{Sets: 4, Ways: 1, LineWords: 1, Policy: cache.FIFO, Dead: cache.DeadDemote, HonorBypass: true, Seed: 1},
		{Sets: 8, Ways: 4, LineWords: 4, Policy: cache.Random, Dead: cache.DeadInvalidate, HonorBypass: true, Seed: 7},
		{Sets: 16, Ways: 2, LineWords: 2, Policy: cache.LRU, Dead: cache.DeadOff, HonorBypass: false, Seed: 1},
	}
	for _, mode := range []core.Mode{core.Unified, core.Conventional} {
		for gi, gcfg := range geoms {
			res := runBoth(t, src, core.Config{Mode: mode, Target: tiny}, gcfg)
			if res.CacheStats.Refs != res.Loads+res.Stores {
				t.Errorf("geom %d: cache refs %d != loads+stores %d",
					gi, res.CacheStats.Refs, res.Loads+res.Stores)
			}
		}
	}
}

func TestUnifiedReducesTraffic(t *testing.T) {
	// The headline effect: on a register-friendly workload with spills and
	// frame traffic, unified management moves fewer words between cache
	// and memory than conventional management of the same program.
	src := `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
void main() { print(fib(17)); }`

	conv, err := core.Compile(src, core.Config{Mode: core.Conventional})
	if err != nil {
		t.Fatal(err)
	}
	unif, err := core.Compile(src, core.Config{Mode: core.Unified})
	if err != nil {
		t.Fatal(err)
	}
	convProg, err := codegen.Generate(conv)
	if err != nil {
		t.Fatal(err)
	}
	unifProg, err := codegen.Generate(unif)
	if err != nil {
		t.Fatal(err)
	}
	// A small cache so the recursion's frame traffic exceeds capacity.
	small := cache.Config{Sets: 8, Ways: 2, LineWords: 1, Policy: cache.LRU,
		Dead: cache.DeadInvalidate, HonorBypass: true, Seed: 1}
	smallConv := small
	smallConv.Dead = cache.DeadOff
	smallConv.HonorBypass = false
	convRes, err := Run(convProg, Config{Cache: smallConv})
	if err != nil {
		t.Fatal(err)
	}
	unifRes, err := Run(unifProg, Config{Cache: small})
	if err != nil {
		t.Fatal(err)
	}
	if convRes.Output != unifRes.Output {
		t.Fatalf("outputs differ: %q vs %q", convRes.Output, unifRes.Output)
	}
	convT := convRes.CacheStats.MemTrafficWords(1)
	unifT := unifRes.CacheStats.MemTrafficWords(1)
	if unifT >= convT {
		t.Errorf("unified traffic %d >= conventional %d", unifT, convT)
	}
}

func TestTraceRecording(t *testing.T) {
	comp, err := core.Compile(programs[4], core.Config{Mode: core.Unified})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Generate(comp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, Config{Cache: cache.DefaultConfig(), RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.Trace)) != res.Loads+res.Stores {
		t.Errorf("trace length %d != loads+stores %d", len(res.Trace), res.Loads+res.Stores)
	}
	c := res.Trace.Count()
	if int64(c.Refs) != res.CacheStats.Refs {
		t.Errorf("trace refs %d != cache refs %d", c.Refs, res.CacheStats.Refs)
	}
}

func TestStepLimit(t *testing.T) {
	src := `void main() { while (1) {} }`
	comp, err := core.Compile(src, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Generate(comp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, Config{MaxSteps: 10000}); err == nil {
		t.Error("expected step-limit error")
	}
}

func TestDynamicBypassPercent(t *testing.T) {
	comp, err := core.Compile(`
int u;
void main() {
    int i;
    for (i = 0; i < 10; i++) u = u + i;
    print(u);
}`, core.Config{Mode: core.Unified})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Generate(comp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, Config{Cache: cache.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	// u is unaliased: every data reference here is a bypass reference.
	if got := res.DynamicBypassPercent(); got != 100 {
		t.Errorf("dynamic bypass = %f%%, want 100%%", got)
	}
}

// A compiled program saved to assembly text and re-assembled must behave
// identically on the simulator.
func TestAssembleRoundTripExecution(t *testing.T) {
	srcs := []string{programs[3], programs[4], programs[6]}
	for i, src := range srcs {
		comp, err := core.Compile(src, core.Config{Mode: core.Unified})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := codegen.Generate(comp)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(prog, Config{Cache: cache.DefaultConfig()})
		if err != nil {
			t.Fatal(err)
		}
		reprog, err := isa.Assemble(prog.Save())
		if err != nil {
			t.Fatalf("case %d: assemble: %v", i, err)
		}
		got, err := Run(reprog, Config{Cache: cache.DefaultConfig()})
		if err != nil {
			t.Fatalf("case %d: run assembled: %v", i, err)
		}
		if got.Output != want.Output {
			t.Errorf("case %d: assembled output %q != original %q", i, got.Output, want.Output)
		}
		if got.Instructions != want.Instructions {
			t.Errorf("case %d: instruction counts differ: %d vs %d",
				i, got.Instructions, want.Instructions)
		}
		cs, ws := got.CacheStats, want.CacheStats
		if cs != ws {
			t.Errorf("case %d: cache stats differ:\n%+v\n%+v", i, cs, ws)
		}
	}
}

func TestInstructionCacheModel(t *testing.T) {
	comp, err := core.Compile(programs[3], core.Config{Mode: core.Unified}) // fib
	if err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Generate(comp)
	if err != nil {
		t.Fatal(err)
	}
	icfg := cache.Config{Sets: 16, Ways: 2, LineWords: 4, Policy: cache.LRU,
		Dead: cache.DeadOff, HonorBypass: false, Seed: 1}
	res, err := Run(prog, Config{Cache: cache.DefaultConfig(), ICache: &icfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.ICacheStats == nil {
		t.Fatal("no icache stats")
	}
	ist := *res.ICacheStats
	if ist.Refs != res.Instructions {
		t.Errorf("icache refs %d != instructions %d", ist.Refs, res.Instructions)
	}
	// fib's code is tiny and loops heavily: the I-cache must hit nearly
	// always once warm.
	if ratio := float64(ist.Hits) / float64(ist.Refs); ratio < 0.99 {
		t.Errorf("icache hit ratio %.4f, want > 0.99 for a hot loop", ratio)
	}
	// Without the ICache option, no stats appear.
	res2, err := Run(prog, Config{Cache: cache.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ICacheStats != nil {
		t.Error("icache stats present without ICache config")
	}
}
