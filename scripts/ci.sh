#!/usr/bin/env bash
# CI gate: formatting, vet, build, race-enabled tests, and the static
# verifier over every example MC program (both management modes).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== unicheck (benchmark suite) =="
go run ./cmd/unicheck

echo "== unicheck (examples/mc) =="
go run ./cmd/unicheck examples/mc/*.mc

echo "CI OK"
