#!/usr/bin/env bash
# CI gate: formatting, vet, build, race-enabled tests, and the static
# verifier over every example MC program (both management modes).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== lint-smoke (unilint: determinism/panic/cancellation invariants) =="
# The stdlib-only static-analysis suite (internal/lint) must prove its
# own analyzers against the planted-bug fixtures, then run clean over the
# whole tree: zero unsuppressed findings, and the unicache-lint/v1
# artifact it emits must verify. Budgeted like replay-smoke: the loader
# type-checks the module plus the stdlib closure from source in a few
# seconds, so 60s catches any wholesale regression.
LINT_T0=$SECONDS
go build -o /tmp/unilint-ci ./cmd/unilint
go test -count=1 -run 'TestFixtures' ./internal/lint
/tmp/unilint-ci -q -json /tmp/lint-ci.json ./...
/tmp/unilint-ci -verify /tmp/lint-ci.json
LINT_SEC=$((SECONDS - LINT_T0))
echo "lint-smoke: ${LINT_SEC}s"
if [ "$LINT_SEC" -gt 60 ]; then
    echo "lint-smoke took ${LINT_SEC}s, budget is 60s" >&2
    exit 1
fi
rm -f /tmp/unilint-ci /tmp/lint-ci.json

echo "== go test -race =="
go test -race ./...

echo "== unicheck (benchmark suite) =="
go run ./cmd/unicheck

echo "== unicheck (examples/mc) =="
go run ./cmd/unicheck examples/mc/*.mc

echo "== go test -race (focused: sweep, artifact, vm, serve) =="
# The parallel sweep engine, the artifact layer, and the serving stack
# are the goroutine-heavy subsystems; give them a dedicated race pass at
# higher iteration count than the blanket run above.
go test -race -count=2 ./internal/sweep ./internal/artifact ./internal/vm ./internal/serve ./internal/serve/loadtest

echo "== fuzz smoke (10s per target) =="
go test -run 'xxx^' -fuzz 'FuzzCompile$' -fuzztime 10s .
go test -run 'xxx^' -fuzz 'FuzzAsmRoundTrip$' -fuzztime 10s ./internal/isa
go test -run 'xxx^' -fuzz 'FuzzCacheModel$' -fuzztime 10s ./internal/cache
go test -run 'xxx^' -fuzz 'FuzzExact$' -fuzztime 10s ./internal/exact
go test -run 'xxx^' -fuzz 'FuzzDiff$' -fuzztime 10s ./internal/difftest
go test -run 'xxx^' -fuzz 'FuzzTraceCodec$' -fuzztime 10s ./internal/replay

echo "== diff-smoke (differential conformance, fixed seed window) =="
# 200 generated programs through every compile config x cache geometry
# against the reference interpreter; any divergence is minimized and the
# gate fails. The checked-in reproducers are replayed as regressions.
go run ./cmd/unidiff -seed 1 -n 200 -q
go run ./cmd/unidiff examples/difftest/*.mc

echo "== exact-smoke (refinement + static-vs-dynamic oracle) =="
# The refinement must run clean over the examples and the benchmark
# suite, the precision table must stay byte-identical to the checked-in
# golden, and the oracle must confirm every verdict on the two smallest
# benchmarks by replaying them on the production VM.
go run ./cmd/unicheck -exact examples/mc/*.mc
go run ./cmd/unicheck -exact
go run ./cmd/unibench -experiment precision > /tmp/precision-ci.txt
diff -u BENCH_precision.txt /tmp/precision-ci.txt
rm -f /tmp/precision-ci.txt
go run ./cmd/unicheck -oracle -bench queen,sieve

echo "== exact-scale-smoke (antichain vs power-set, generated programs) =="
# Mid-size generated programs through both exact solvers with
# interprocedural summaries on: any per-site verdict divergence between
# the antichain and power-set solvers fails the run, and the oracle
# replays every verdict on the production VM. The fuzz pass drives the
# same differential over fresh mcgen programs for a few seconds.
go run ./cmd/unicheck -oracle -solver both -interproc -bench sieve -gen 3,5,8 -gen-scale 2
go test -run 'xxx^' -fuzz 'FuzzExactAntichain$' -fuzztime 10s ./internal/exact

echo "== fault campaigns (bubble, sieve) =="
go run ./cmd/unibench -experiment resilience -bench bubble,sieve

echo "== sweep smoke (determinism + resume artifact) =="
# A small grid swept at 1 and 8 workers must produce byte-identical
# artifacts, and the checked-in full-grid artifact must still verify.
go build -o /tmp/unisweep-ci ./cmd/unisweep
/tmp/unisweep-ci -bench bubble,sieve -sets 8,16 -ways 1,2 -quiet -o /tmp/sweep-w1.json -workers 1
/tmp/unisweep-ci -bench bubble,sieve -sets 8,16 -ways 1,2 -quiet -o /tmp/sweep-w8.json -workers 8
cmp /tmp/sweep-w1.json /tmp/sweep-w8.json
/tmp/unisweep-ci -verify /tmp/sweep-w1.json
/tmp/unisweep-ci -verify BENCH_sweep.json
rm -f /tmp/unisweep-ci /tmp/sweep-w1.json /tmp/sweep-w8.json

echo "== replay-smoke (engine equivalence, artifact, wall-time budget) =="
# The replay engine's differential suite (simulator equivalence on real
# traces at several worker counts), then a timed `-experiment all`: the
# full table regeneration took ~56s before the replay engine existed, so
# a 45s ceiling catches any wholesale performance regression while
# leaving headroom for machine variance. The measured time feeds the
# freshly regenerated BENCH_replay.json, which must verify, as must the
# checked-in artifact.
go test -race -run 'TestReplayMatchesSimulator|TestBatchMatchesSingle' -short ./internal/replay
go build -o /tmp/unibench-ci ./cmd/unibench
ALL_T0=$SECONDS
/tmp/unibench-ci -experiment all >/tmp/unibench-all-ci.txt 2>/dev/null
ALL_SEC=$((SECONDS - ALL_T0))
echo "-experiment all: ${ALL_SEC}s (pre-replay baseline: ~56s)"
if [ "$ALL_SEC" -gt 45 ]; then
    echo "-experiment all took ${ALL_SEC}s, budget is 45s" >&2
    exit 1
fi
/tmp/unibench-ci -experiment replay -all-sec "$ALL_SEC" -replay-out /tmp/replay-ci.json >/dev/null 2>&1
/tmp/unibench-ci -verify-replay /tmp/replay-ci.json
/tmp/unibench-ci -verify-replay BENCH_replay.json
rm -f /tmp/unibench-ci /tmp/unibench-all-ci.txt /tmp/replay-ci.json

echo "== serve-smoke (daemon boot, dedup, panic isolation, drain) =="
# Boot unicached on an ephemeral port, drive it with concurrent mixed
# unicall traffic (the dedup probe requires single-flight hits), prove an
# injected panic comes back structured while the daemon stays healthy,
# run a short seeded load test whose report must verify, check the
# committed BENCH_serve.json schema, and finally SIGTERM the daemon: it
# must drain and exit 0 within the drain deadline.
go build -o /tmp/unicached-ci ./cmd/unicached
go build -o /tmp/unicall-ci ./cmd/unicall
rm -f /tmp/unicached-ci.addr
/tmp/unicached-ci -addr 127.0.0.1:0 -addr-file /tmp/unicached-ci.addr \
    -debug -drain 10s >/tmp/unicached-ci.log 2>&1 &
UCD_PID=$!
for i in $(seq 1 100); do
    [ -s /tmp/unicached-ci.addr ] && break
    sleep 0.1
done
[ -s /tmp/unicached-ci.addr ] || { echo "daemon never bound" >&2; cat /tmp/unicached-ci.log >&2; exit 1; }
/tmp/unicall-ci -addr-file /tmp/unicached-ci.addr health
/tmp/unicall-ci -addr-file /tmp/unicached-ci.addr -n 16 -c 4 -min-dedup 8 \
    simulate examples/mc/loops.mc >/dev/null
/tmp/unicall-ci -addr-file /tmp/unicached-ci.addr -requests 400 loadtest \
    >/tmp/serve-loadtest-ci.txt
cat /tmp/serve-loadtest-ci.txt
/tmp/unicall-ci -addr-file /tmp/unicached-ci.addr health
/tmp/unicall-ci -verify-bench BENCH_serve.json
kill -TERM "$UCD_PID"
DRAIN_OK=0
for i in $(seq 1 100); do
    if ! kill -0 "$UCD_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
    sleep 0.1
done
[ "$DRAIN_OK" = 1 ] || { echo "daemon did not drain within 10s of SIGTERM" >&2; kill -9 "$UCD_PID"; exit 1; }
wait "$UCD_PID" || { echo "daemon exited nonzero after drain" >&2; exit 1; }
grep -q "drained" /tmp/unicached-ci.log || { echo "no drain confirmation in daemon log" >&2; exit 1; }
rm -f /tmp/unicached-ci /tmp/unicall-ci /tmp/unicached-ci.addr /tmp/unicached-ci.log /tmp/serve-loadtest-ci.txt

echo "== campaign-smoke (remote sweep conformance + liveness store GC) =="
# Boot a disk-backed daemon with a store budget, run a reduced paper grid
# both locally and through the /v1/sweep campaign endpoint, and require
# the two artifacts to be byte-identical. Then one GC cycle (via unicall)
# against the daemon's configured budget, schema checks on the freshly
# written and the committed BENCH_campaign.json, and a SIGTERM drain.
# Budgeted at 60s: the grid is 32 units and both runs share nothing.
CAMP_T0=$SECONDS
go build -o /tmp/unicached-ci ./cmd/unicached
go build -o /tmp/unicall-ci ./cmd/unicall
go build -o /tmp/unisweep-ci ./cmd/unisweep
rm -rf /tmp/unicached-ci-store
rm -f /tmp/unicached-ci.addr
/tmp/unicached-ci -addr 127.0.0.1:0 -addr-file /tmp/unicached-ci.addr \
    -cache-dir /tmp/unicached-ci-store -store-budget $((4*1024*1024)) \
    -drain 10s >/tmp/unicached-ci.log 2>&1 &
UCD_PID=$!
for i in $(seq 1 100); do
    [ -s /tmp/unicached-ci.addr ] && break
    sleep 0.1
done
[ -s /tmp/unicached-ci.addr ] || { echo "daemon never bound" >&2; cat /tmp/unicached-ci.log >&2; exit 1; }
CAMP_GRID="-bench bubble,sieve -sets 8,16 -ways 1,2 -policies lru,fifo"
/tmp/unisweep-ci $CAMP_GRID -quiet -o /tmp/campaign-local-ci.json
/tmp/unisweep-ci $CAMP_GRID -remote-addr-file /tmp/unicached-ci.addr \
    -remote-gc -campaign-bench /tmp/campaign-bench-ci.json \
    -o /tmp/campaign-remote-ci.json
cmp /tmp/campaign-local-ci.json /tmp/campaign-remote-ci.json
/tmp/unisweep-ci -verify /tmp/campaign-remote-ci.json
/tmp/unisweep-ci -verify-campaign /tmp/campaign-bench-ci.json
/tmp/unisweep-ci -verify-campaign BENCH_campaign.json
/tmp/unicall-ci -addr-file /tmp/unicached-ci.addr gc >/dev/null
kill -TERM "$UCD_PID"
DRAIN_OK=0
for i in $(seq 1 100); do
    if ! kill -0 "$UCD_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
    sleep 0.1
done
[ "$DRAIN_OK" = 1 ] || { echo "daemon did not drain within 10s of SIGTERM" >&2; kill -9 "$UCD_PID"; exit 1; }
wait "$UCD_PID" || { echo "daemon exited nonzero after drain" >&2; exit 1; }
CAMP_SEC=$((SECONDS - CAMP_T0))
echo "campaign-smoke: ${CAMP_SEC}s"
if [ "$CAMP_SEC" -gt 60 ]; then
    echo "campaign-smoke took ${CAMP_SEC}s, budget is 60s" >&2
    exit 1
fi
rm -rf /tmp/unicached-ci-store
rm -f /tmp/unicached-ci /tmp/unicall-ci /tmp/unisweep-ci /tmp/unicached-ci.addr \
    /tmp/unicached-ci.log /tmp/campaign-local-ci.json /tmp/campaign-remote-ci.json \
    /tmp/campaign-bench-ci.json

echo "CI OK"
