#!/usr/bin/env bash
# CI gate: formatting, vet, build, race-enabled tests, and the static
# verifier over every example MC program (both management modes).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== unicheck (benchmark suite) =="
go run ./cmd/unicheck

echo "== unicheck (examples/mc) =="
go run ./cmd/unicheck examples/mc/*.mc

echo "== fuzz smoke (10s per target) =="
go test -run 'xxx^' -fuzz 'FuzzCompile$' -fuzztime 10s .
go test -run 'xxx^' -fuzz 'FuzzAsmRoundTrip$' -fuzztime 10s ./internal/isa
go test -run 'xxx^' -fuzz 'FuzzCacheModel$' -fuzztime 10s ./internal/cache

echo "== fault campaigns (bubble, sieve) =="
go run ./cmd/unibench -experiment resilience -bench bubble,sieve

echo "CI OK"
